//! The paper's smoothness measures (Section 2): the quadratic potential
//! Ψ, the exponential potential Φ, and the max−min gap.
//!
//! * `Ψ_t(ℓ) = Σᵢ (ℓᵢ − t/n)²` — the classic quadratic potential; the
//!   quantity plotted in Figure 3(b) and lower-bounded for `threshold`
//!   in Lemma 4.2(1).
//! * `Φ_t(ℓ) = Σᵢ (1+ε)^{t/n + 2 − ℓᵢ}` with ε = 1/200 — the exponential
//!   potential driving the drift analysis of Section 3. Note the paper's
//!   convention: *underloaded* bins (large holes) dominate Φ.
//!
//! For `adaptive`, Corollary 3.5 gives `E Φ = O(n)`, hence `E Ψ = O(n)`
//! and gap `O(log n)`; for `threshold` at `m = n²`, Lemma 4.2 gives
//! `Ψ = Ω(n^{9/8})`, gap `Ω(n^{1/8})` and `Φ = 2^{Ω(n^{1/8})}`.

/// The paper's ε = 1/200 (re-exported for convenience; defined in
/// `bib-analysis::paper`).
pub const EPSILON: f64 = bib_analysis::paper::EPSILON;

/// Quadratic potential `Ψ_t(ℓ) = Σᵢ (ℓᵢ − t/n)²` where `t` is the number
/// of balls placed.
///
/// Panics on an empty load slice.
///
/// # Examples
///
/// ```
/// use bib_core::potential::quadratic_potential;
/// assert_eq!(quadratic_potential(&[3, 3, 3], 9), 0.0);  // balanced
/// assert_eq!(quadratic_potential(&[0, 2], 2), 2.0);     // ±1 off average
/// ```
pub fn quadratic_potential(loads: &[u32], t: u64) -> f64 {
    assert!(!loads.is_empty(), "quadratic_potential: empty load vector");
    let avg = t as f64 / loads.len() as f64;
    loads
        .iter()
        .map(|&l| {
            let d = l as f64 - avg;
            d * d
        })
        .sum()
}

/// Exponential potential `Φ_t(ℓ) = Σᵢ (1+ε)^{t/n + 2 − ℓᵢ}`.
///
/// Evaluated through [`ln_exponential_potential`] and re-exponentiated,
/// so it degrades gracefully (returns `+inf`) only when the true value
/// overflows `f64`.
pub fn exponential_potential(loads: &[u32], t: u64, eps: f64) -> f64 {
    ln_exponential_potential(loads, t, eps).exp()
}

/// Natural logarithm of the exponential potential, computed with the
/// log-sum-exp trick so deep holes (the `threshold` regime of Lemma 4.2,
/// where Φ is `2^{Ω(n^{1/8})}`) do not overflow.
pub fn ln_exponential_potential(loads: &[u32], t: u64, eps: f64) -> f64 {
    assert!(
        !loads.is_empty(),
        "exponential_potential: empty load vector"
    );
    assert!(eps > 0.0, "exponential_potential: ε must be positive");
    let avg = t as f64 / loads.len() as f64;
    let ln_base = (1.0 + eps).ln();
    // Exponents e_i = (t/n + 2 − ℓ_i)·ln(1+ε).
    let max_e = loads
        .iter()
        .map(|&l| (avg + 2.0 - l as f64) * ln_base)
        .fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = loads
        .iter()
        .map(|&l| ((avg + 2.0 - l as f64) * ln_base - max_e).exp())
        .sum();
    max_e + sum.ln()
}

/// [`quadratic_potential`] over occupancy classes: `levels` yields
/// `(load, count)` pairs (as [`OccupancyHistogram::levels`] does), `n`
/// is the number of bins, `t` the number of balls placed. Cost is
/// `O(#distinct loads)` — the histogram-first outcome path.
///
/// [`OccupancyHistogram::levels`]: crate::histogram::OccupancyHistogram::levels
pub fn quadratic_potential_classes<I>(levels: I, n: u64, t: u64) -> f64
where
    I: IntoIterator<Item = (u32, u64)>,
{
    assert!(n > 0, "quadratic_potential: empty load vector");
    let avg = t as f64 / n as f64;
    levels
        .into_iter()
        .map(|(l, c)| {
            let d = l as f64 - avg;
            c as f64 * d * d
        })
        .sum()
}

/// [`ln_exponential_potential`] over occupancy classes — the same
/// log-sum-exp, with each class contributing `count` copies of its
/// exponent. Two passes over the `O(#distinct loads)` classes.
pub fn ln_exponential_potential_classes<I>(levels: I, n: u64, t: u64, eps: f64) -> f64
where
    I: IntoIterator<Item = (u32, u64)>,
    I::IntoIter: Clone,
{
    assert!(n > 0, "exponential_potential: empty load vector");
    assert!(eps > 0.0, "exponential_potential: ε must be positive");
    let avg = t as f64 / n as f64;
    let ln_base = (1.0 + eps).ln();
    let iter = levels.into_iter();
    // Exponents e_ℓ = (t/n + 2 − ℓ)·ln(1+ε), weighted by class counts.
    let max_e = iter
        .clone()
        .map(|(l, _)| (avg + 2.0 - l as f64) * ln_base)
        .fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = iter
        .map(|(l, c)| c as f64 * ((avg + 2.0 - l as f64) * ln_base - max_e).exp())
        .sum();
    max_e + sum.ln()
}

/// Max−min load gap.
pub fn gap(loads: &[u32]) -> u32 {
    assert!(!loads.is_empty(), "gap: empty load vector");
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for &l in loads {
        lo = lo.min(l);
        hi = hi.max(l);
    }
    hi - lo
}

/// Number of *holes* below height `h`: `Σᵢ max(h − ℓᵢ, 0)`.
pub fn holes(loads: &[u32], h: u32) -> u64 {
    loads.iter().map(|&l| h.saturating_sub(l) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_zero_for_perfect_balance() {
        let loads = vec![3u32; 10];
        assert_eq!(quadratic_potential(&loads, 30), 0.0);
    }

    #[test]
    fn quadratic_known_value() {
        // loads [0, 2], t = 2, avg = 1: Ψ = 1 + 1 = 2.
        assert_eq!(quadratic_potential(&[0, 2], 2), 2.0);
    }

    #[test]
    fn quadratic_uses_t_not_sum() {
        // The paper's Ψ_t is measured against t/n even mid-allocation.
        // loads [1, 0] with t = 4 (hypothetical): avg 2 ⇒ 1 + 4 = 5.
        assert_eq!(quadratic_potential(&[1, 0], 4), 5.0);
    }

    #[test]
    fn exponential_balanced_value() {
        // Perfectly balanced: every term is (1+ε)², so Φ = n(1+ε)².
        let n = 8usize;
        let loads = vec![5u32; n];
        let phi = exponential_potential(&loads, 5 * n as u64, EPSILON);
        let expect = n as f64 * (1.0 + EPSILON).powi(2);
        assert!((phi - expect).abs() < 1e-9 * expect, "phi={phi}");
    }

    #[test]
    fn exponential_dominated_by_underloaded_bins() {
        // A deep hole contributes exponentially; an overloaded bin decays.
        let t = 100u64; // avg 10 over 10 bins
        let deep_hole = {
            let mut l = vec![10u32; 10];
            l[0] = 0;
            exponential_potential(&l, t, EPSILON)
        };
        let tall_peak = {
            let mut l = vec![10u32; 10];
            l[0] = 20;
            exponential_potential(&l, t, EPSILON)
        };
        assert!(deep_hole > tall_peak);
    }

    #[test]
    fn ln_exponential_matches_direct_small_case() {
        let loads = [0u32, 1, 3, 3];
        let t = 7u64;
        let eps = EPSILON;
        let direct: f64 = loads
            .iter()
            .map(|&l| (1.0 + eps).powf(t as f64 / 4.0 + 2.0 - l as f64))
            .sum();
        let via_ln = ln_exponential_potential(&loads, t, eps).exp();
        assert!((direct - via_ln).abs() < 1e-10 * direct);
    }

    #[test]
    fn ln_exponential_survives_huge_holes() {
        // A hole of depth 10^6 at ε = 1/200 gives Φ ~ (1.005)^10^6 ≈
        // e^4987 — far beyond f64. The ln version must stay finite.
        let mut loads = vec![1_000_000u32; 4];
        loads[0] = 0;
        let v = ln_exponential_potential(&loads, 4_000_000 - 1_000_000, EPSILON);
        assert!(v.is_finite());
        assert!(exponential_potential(&loads, 3_000_000, EPSILON).is_infinite());
    }

    #[test]
    fn class_potentials_match_dense() {
        // The O(#distinct) class forms must agree exactly with the
        // dense forms on the same multiset.
        let loads = [0u32, 1, 1, 3, 3, 3, 7];
        let classes = [(0u32, 1u64), (1, 2), (3, 3), (7, 1)];
        let n = loads.len() as u64;
        let t = 18u64;
        let dense_psi = quadratic_potential(&loads, t);
        let class_psi = quadratic_potential_classes(classes.iter().copied(), n, t);
        assert!((dense_psi - class_psi).abs() < 1e-12 * dense_psi.max(1.0));
        let dense = ln_exponential_potential(&loads, t, EPSILON);
        let class = ln_exponential_potential_classes(classes.iter().copied(), n, t, EPSILON);
        assert!((dense - class).abs() < 1e-12 * dense.abs().max(1.0));
    }

    #[test]
    fn class_ln_phi_survives_huge_holes() {
        let classes = [(0u32, 1u64), (1_000_000, 3)];
        let v = ln_exponential_potential_classes(classes.iter().copied(), 4, 3_000_000, EPSILON);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn gap_and_holes() {
        let loads = [2u32, 5, 3];
        assert_eq!(gap(&loads), 3);
        assert_eq!(holes(&loads, 5), 3 + 2);
        assert_eq!(holes(&loads, 2), 0);
        assert_eq!(gap(&[7]), 0);
    }

    #[test]
    fn psi_le_phi_relation_when_bounded_above() {
        // Section 2: for max ℓᵢ ≤ t/n + O(1), Ψ(ℓ) = O(Φ(ℓ)). The hidden
        // constant is sup_x x²/(1+ε)^{x+2} ≈ 2.2·10⁴ at ε = 1/200
        // (attained near x = 2/ln(1+ε) ≈ 401). Check the bound with that
        // constant, and that the per-bin ratio indeed decays for deeper
        // holes.
        let c = {
            let x = 2.0 / (1.0f64 + EPSILON).ln();
            x * x / (1.0 + EPSILON).powf(x + 2.0)
        };
        for depth in [50u32, 400, 2000] {
            let n = 16usize;
            let full = 2 * depth;
            let t = (n as u64) * full as u64 - depth as u64;
            let mut loads = vec![full; n];
            loads[0] = full - depth; // one hole of the given depth
            let psi = quadratic_potential(&loads, t);
            let phi = exponential_potential(&loads, t, EPSILON);
            assert!(psi <= 1.1 * c * phi, "depth={depth} psi={psi} phi={phi}");
        }
    }
}
