//! Smoothness time series: watch Ψ, ln Φ and the gap evolve stage by
//! stage for `adaptive` vs `threshold`.
//!
//! Corollary 3.5 says `adaptive` holds `E[Φ] = O(n)` at *every* stage;
//! Lemma 4.2 says `threshold` lets holes accumulate. This example prints
//! the two trajectories side by side as CSV, ready for plotting.
//!
//! Run with:
//! ```text
//! cargo run --release --example smoothness > smoothness.csv
//! ```

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocol::StageTrace;
use balls_into_bins::core::run::run_with_observer;

fn main() {
    let n = 2_048usize;
    let phi_stages = 256u64; // m = 256·n
    let cfg = RunConfig::new(n, phi_stages * n as u64).with_engine(Engine::Jump);

    let mut ada_trace = StageTrace::new();
    run_with_observer(&Adaptive::paper(), &cfg, 5, &mut ada_trace);
    let mut thr_trace = StageTrace::new();
    run_with_observer(&Threshold, &cfg, 5, &mut thr_trace);

    println!("stage,adaptive_psi,adaptive_ln_phi,adaptive_gap,threshold_psi,threshold_ln_phi,threshold_gap");
    for i in 0..ada_trace.stages.len() {
        println!(
            "{},{:.3},{:.3},{},{:.3},{:.3},{}",
            ada_trace.stages[i],
            ada_trace.psi[i],
            ada_trace.ln_phi[i],
            ada_trace.gaps[i],
            thr_trace.psi[i],
            thr_trace.ln_phi[i],
            thr_trace.gaps[i],
        );
    }

    // A human-readable footer on stderr so the CSV stays clean.
    let last = ada_trace.stages.len() - 1;
    eprintln!(
        "final stage {}: adaptive psi={:.1} gap={} | threshold psi={:.1} gap={}",
        ada_trace.stages[last],
        ada_trace.psi[last],
        ada_trace.gaps[last],
        thr_trace.psi[last],
        thr_trace.gaps[last],
    );
    eprintln!(
        "adaptive's psi stays O(n) = O({n}) at every stage; threshold's grows with the stage count."
    );
}
