//! C2 clean fixture: the termination argument lives next to the loop.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn claim(x: &AtomicU64, cap: u64) -> bool {
    // RETRY: terminates because the counter only grows — once it
    // reaches `cap` the closure returns None and the loop exits, and
    // each failed CAS re-reads a strictly larger value.
    // ORDERING: the counter publishes nothing; Relaxed on both edges.
    x.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        (v < cap).then_some(v + 1)
    })
    .is_ok()
}
