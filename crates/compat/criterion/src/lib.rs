//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of the criterion 0.5 API its benches use —
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`] (both the
//! positional and the `name/config/targets` forms), benchmark groups
//! with [`Throughput`], [`BenchmarkId`] and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: per benchmark, a short warm-up
//! followed by `sample_size` timed samples whose iteration count is
//! sized so each sample takes roughly `measurement_time / sample_size`.
//! The median ns/iter (and elements/s when a throughput is set) is
//! printed in a one-line-per-bench format. No statistics, plots, HTML
//! reports or regression baselines — swap in the real criterion from
//! the registry for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per benchmark iteration, used for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("jump", 1024)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id for groups whose name already names the
    /// function, e.g. `BenchmarkId::from_parameter(n)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` `self.iters` times and records the wall-clock total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (configuration + output).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A set of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration of the following benchmarks
    /// performs.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id.clone(), &mut f);
    }

    /// Registers and immediately runs a benchmark parameterised by
    /// `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id.clone(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (kept for API compatibility; output is streamed).
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // `cargo test` runs harness-less bench binaries with `--test`:
        // like real criterion, execute each benchmark exactly once as a
        // smoke test instead of measuring.
        if std::env::args().any(|a| a == "--test") {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!(
                "test bench {:<48} ... ok (1 iter)",
                format!("{}/{}", self.name, id)
            );
            return;
        }
        // Calibrate: run single iterations until the warm-up budget is
        // spent, tracking the observed per-iteration cost.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        let mut calibration_runs = 0u64;
        while warm_start.elapsed() < self.criterion.warm_up_time || calibration_runs == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1));
            calibration_runs += 1;
            if calibration_runs >= 1000 {
                break;
            }
        }

        let samples = self.criterion.sample_size;
        let budget_per_sample = self.criterion.measurement_time / samples as u32;
        let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000_000) as u64;

        let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = ns_per_iter[ns_per_iter.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:>12.0} elem/s", e as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "bench {:<48} {:>14.1} ns/iter ({} samples x {} iters){}",
            format!("{}/{}", self.name, id),
            median,
            samples,
            iters,
            rate
        );
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(benches, f, g)` or
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes --bench (and possibly filters); accepted and
            // ignored — this stand-in always runs every benchmark.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sq", 7u32), &7u32, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        sample_bench(&mut c);
    }

    criterion_group! {
        name = named_form;
        config = Criterion::default().sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = sample_bench
    }
    criterion_group!(positional_form, sample_bench);

    #[test]
    fn group_macros_expand() {
        named_form();
        positional_form();
    }
}
