//! Property-based tests for the core data structures and invariants.

use bib_core::bins::LoadVector;
use bib_core::partitioned::PartitionedBins;
use bib_core::potential::{
    exponential_potential, gap, holes, ln_exponential_potential, quadratic_potential, EPSILON,
};
use bib_core::prelude::*;
use bib_core::protocols::Threshold as ThresholdProto;
use proptest::prelude::*;

proptest! {
    /// The partitioned structure agrees with the naive load vector under
    /// arbitrary placement sequences, for every threshold query.
    #[test]
    fn partitioned_equals_naive(
        n in 1usize..40,
        ops in prop::collection::vec(0usize..40, 0..200),
    ) {
        let mut pb = PartitionedBins::new(n);
        let mut lv = LoadVector::new(n);
        for &op in &ops {
            let b = op % n;
            pb.place(b);
            lv.place(b);
        }
        pb.check_invariants();
        prop_assert_eq!(pb.as_slice(), lv.as_slice());
        prop_assert_eq!(pb.total(), lv.total());
        prop_assert_eq!(pb.max_load(), lv.max_load());
        for t in 0..(lv.max_load() + 3) {
            prop_assert_eq!(pb.count_below(t), lv.count_below(t));
        }
    }

    /// Rebuilding the partitioned index from the final loads gives the
    /// same queryable state as building it incrementally.
    #[test]
    fn from_loads_equals_incremental(
        n in 1usize..30,
        ops in prop::collection::vec(0usize..30, 0..150),
    ) {
        let mut pb = PartitionedBins::new(n);
        for &op in &ops {
            pb.place(op % n);
        }
        let rebuilt = PartitionedBins::from_loads(pb.as_slice().to_vec());
        rebuilt.check_invariants();
        for t in 0..(pb.max_load() + 3) {
            prop_assert_eq!(pb.count_below(t), rebuilt.count_below(t));
        }
    }

    /// Ψ is translation-detecting: it is zero iff the vector is exactly
    /// balanced at t/n, and always non-negative and finite.
    #[test]
    fn quadratic_potential_properties(
        loads in prop::collection::vec(0u32..100, 1..50),
    ) {
        let t: u64 = loads.iter().map(|&l| l as u64).sum();
        let psi = quadratic_potential(&loads, t);
        prop_assert!(psi >= 0.0);
        prop_assert!(psi.is_finite());
        let n = loads.len() as u64;
        let balanced = loads.iter().all(|&l| l as u64 * n == t);
        if balanced {
            prop_assert!(psi < 1e-9);
        } else {
            prop_assert!(psi > 0.0);
        }
    }

    /// ln Φ agrees with direct Φ when the direct value is representable.
    #[test]
    fn exponential_potential_ln_consistency(
        loads in prop::collection::vec(0u32..60, 1..40),
    ) {
        let t: u64 = loads.iter().map(|&l| l as u64).sum();
        let phi = exponential_potential(&loads, t, EPSILON);
        let ln_phi = ln_exponential_potential(&loads, t, EPSILON);
        prop_assert!(phi > 0.0);
        prop_assert!((ln_phi.exp() - phi).abs() <= 1e-9 * phi);
    }

    /// Adding a ball to a *minimum-loaded* bin never increases Φ
    /// by more than the trivial (1+ε) stage factor would allow, and
    /// filling a hole strictly decreases the hole count.
    #[test]
    fn placing_in_min_bin_decreases_holes(
        loads in prop::collection::vec(0u32..20, 2..30),
    ) {
        let max = *loads.iter().max().unwrap();
        let argmin = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        if loads[argmin] < max {
            let before = holes(&loads, max);
            let mut after = loads.clone();
            after[argmin] += 1;
            prop_assert_eq!(holes(&after, max), before - 1);
        }
    }

    /// gap() matches the definitional max − min.
    #[test]
    fn gap_matches_definition(loads in prop::collection::vec(0u32..1000, 1..64)) {
        let mx = *loads.iter().max().unwrap();
        let mn = *loads.iter().min().unwrap();
        prop_assert_eq!(gap(&loads), mx - mn);
    }

    /// End-to-end protocol invariants under arbitrary small configs:
    /// mass conservation, sample accounting, and the max-load guarantee
    /// for the paper's protocols, on both engines.
    #[test]
    fn protocol_invariants_random_configs(
        n in 1usize..64,
        m in 0u64..500,
        seed in 0u64..1000,
        engine_idx in 0usize..Engine::ALL.len(),
    ) {
        let cfg = RunConfig::new(n, m).with_engine(Engine::ALL[engine_idx]);
        for proto in [
            Box::new(Adaptive::paper()) as Box<dyn DynProtocol>,
            Box::new(ThresholdProto),
        ] {
            let out = run_protocol(proto.as_ref(), &cfg, seed);
            out.validate();
            prop_assert!(out.max_load() as u64 <= cfg.max_load_bound());
        }
    }

    /// The adaptive acceptance bound is monotone in the ball index and
    /// increases by exactly 1 every n balls.
    #[test]
    fn adaptive_bound_schedule(n in 1usize..100, stage in 1u64..50) {
        let a = Adaptive::paper();
        let first = (stage - 1) * n as u64 + 1;
        let last = stage * n as u64;
        let b = a.acceptance_bound(n, first);
        prop_assert_eq!(a.acceptance_bound(n, last), b);
        prop_assert_eq!(a.acceptance_bound(n, last + 1), b + 1);
    }

    /// Batched adaptive with batch = 1 is exactly adaptive, for any
    /// config (distribution-level identity via equal streams).
    #[test]
    fn batched_one_is_adaptive(n in 1usize..32, m in 0u64..200, seed in 0u64..100) {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
        let a = run_protocol(&Adaptive::paper(), &cfg, seed);
        // Same underlying stream: run_protocol derives by name, so re-run
        // batched with the adaptive-derived seed directly.
        use bib_core::batched::BatchedAdaptive;
        use bib_core::protocol::NullObserver;
        use bib_rng::SeedSequence;
        let mut rng = SeedSequence::new(seed).child_str("adaptive").rng();
        let b = BatchedAdaptive::new(1).allocate(&cfg, &mut rng, &mut NullObserver);
        prop_assert_eq!(a.loads, b.loads);
        prop_assert_eq!(a.total_samples, b.total_samples);
    }

    /// Weighted adaptive with uniform weights obeys the uniform bound.
    #[test]
    fn weighted_uniform_bound(n in 1usize..32, m in 0u64..300, seed in 0u64..50) {
        use bib_rng::SeedSequence;
        let p = WeightedAdaptive::new(vec![1.0; n]);
        let mut rng = SeedSequence::new(seed).rng();
        let out = p.run(m, &mut rng);
        out.validate();
        let bound = m.div_ceil(n as u64) + 1;
        prop_assert!(out.loads.iter().all(|&l| (l as u64) <= bound));
    }
}
