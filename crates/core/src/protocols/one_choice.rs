//! The classical single-choice process: every ball goes into one
//! uniformly random bin.
//!
//! With `m = n` the maximum load is `Θ(log n / log log n)` w.h.p.
//! (Raab–Steger [15]); in the heavily loaded case the gap grows like
//! `Θ(√((m/n) log n))`. The cheapest possible allocation time (`m`
//! samples) with the worst balance — the anchor row for every
//! comparison.

use crate::histogram::{drive_histogram, HistogramSchedule, HistogramSegment, LandingRule};
use crate::protocol::{drive_sequential, Engine, Observer, Outcome, Protocol, RunConfig};
use bib_rng::{Rng64, RngExt};

/// The single-choice baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneChoice;

impl HistogramSchedule for OneChoice {
    fn histogram_segment(&self, cfg: &RunConfig, _ball: u64) -> HistogramSegment {
        // Every bin accepts every ball: the unbounded uniform rule, one
        // segment for the whole run.
        HistogramSegment {
            rule: LandingRule::UniformBelow(None),
            end: cfg.m,
        }
    }
}

impl Protocol for OneChoice {
    fn name(&self) -> String {
        "one-choice".into()
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        // `Concurrent` has no fixed-sample path: resolve it like
        // `Auto` (documented on the `Engine` enum).
        let engine = match cfg.engine {
            Engine::Auto | Engine::Concurrent => Engine::auto_fixed(cfg.n, cfg.m),
            engine => engine,
        };
        if engine == Engine::Histogram {
            return drive_histogram(self.name(), cfg, rng, obs, self);
        }
        drive_sequential(self.name(), cfg, rng, obs, |bins, _ball, rng| {
            let b = rng.range_usize(bins.n());
            bins.place(b);
            (b, 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use bib_rng::SplitMix64;

    #[test]
    fn uses_exactly_m_samples() {
        let cfg = RunConfig::new(32, 500);
        let mut rng = SplitMix64::new(1);
        let out = OneChoice.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, 500);
        assert_eq!(out.max_samples_per_ball, 1);
    }

    #[test]
    fn loads_are_roughly_binomial() {
        // Mean load m/n = 16; variance ≈ 16. The empirical spread across
        // bins should be in that ballpark (loose sanity check).
        let cfg = RunConfig::new(256, 256 * 16);
        let mut rng = SplitMix64::new(2);
        let out = OneChoice.allocate(&cfg, &mut rng, &mut NullObserver);
        let mean = 16.0f64;
        let var = out
            .loads
            .iter()
            .map(|&l| (l as f64 - mean) * (l as f64 - mean))
            .sum::<f64>()
            / 256.0;
        assert!(var > 8.0 && var < 32.0, "var={var}");
    }

    #[test]
    fn gap_grows_with_load_unlike_threshold_protocols() {
        let n = 128usize;
        let light = RunConfig::new(n, n as u64);
        let heavy = RunConfig::new(n, (n as u64) * 256);
        let mut rng = SplitMix64::new(3);
        let g_light = OneChoice
            .allocate(&light, &mut rng, &mut NullObserver)
            .gap();
        let g_heavy = OneChoice
            .allocate(&heavy, &mut rng, &mut NullObserver)
            .gap();
        assert!(
            g_heavy > g_light,
            "heavy gap {g_heavy} should exceed light gap {g_light}"
        );
    }
}
