//! Exact discrete distributions: Poisson, binomial and geometric.
//!
//! The paper's analysis repeatedly converts between binomial and Poisson
//! views of the allocation process (Lemma 3.2 approximates
//! `Bin(n/2, 1/n)` by `Poi(1/2)`; Theorem 4.1 and Lemma 4.2 replace the
//! access distribution by independent Poissons via Lemma A.7). These
//! types provide exact pmfs, cdfs, survival functions and quantiles so
//! that experiments and tests can quantify those approximations instead
//! of hand-waving them.

use crate::special::{beta_inc, gamma_q, ln_choose, ln_factorial};

/// Poisson distribution with rate `λ > 0`.
///
/// # Examples
///
/// ```
/// use bib_analysis::Poisson;
/// let d = Poisson::new(199.0 / 198.0); // the rate appearing in Lemma 3.2
/// assert!((d.pmf(0) - (-199.0f64 / 198.0).exp()).abs() < 1e-15);
/// assert!((d.cdf(1_000) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution; panics unless `lambda > 0` and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "Poisson rate must be positive and finite, got {lambda}"
        );
        Self { lambda }
    }

    /// The rate parameter λ (also the mean and the variance).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability mass `Pr[X = k] = e^{−λ} λ^k / k!`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Natural logarithm of the pmf, stable for large `k` or `λ`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// Cumulative distribution `Pr[X ≤ k] = Q(k + 1, λ)`.
    pub fn cdf(&self, k: u64) -> f64 {
        gamma_q(k as f64 + 1.0, self.lambda)
    }

    /// Survival function `Pr[X > k] = 1 − cdf(k)`, evaluated without
    /// catastrophic cancellation (it is itself a regularised gamma value).
    pub fn sf(&self, k: u64) -> f64 {
        crate::special::gamma_p(k as f64 + 1.0, self.lambda)
    }

    /// Tail probability `Pr[X ≥ k]`.
    ///
    /// This is the quantity appearing in Lemma 3.2:
    /// `Pr{Poi(199/198) ≥ k}`.
    pub fn tail(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            self.sf(k - 1)
        }
    }

    /// Smallest `k` such that `cdf(k) ≥ p`; a quantile function.
    ///
    /// Panics unless `p ∈ [0, 1)`. Runs in `O(k*)` time starting from the
    /// mean, which is ample for the moderate rates used here.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..1.0).contains(&p), "quantile: p={p} out of [0,1)");
        let mut k = self.lambda.floor().max(0.0) as u64;
        // Walk down while still above p, then walk up while below.
        while k > 0 && self.cdf(k - 1) >= p {
            k -= 1;
        }
        while self.cdf(k) < p {
            k += 1;
        }
        k
    }
}

/// Binomial distribution with `n` trials and success probability `p`.
///
/// # Examples
///
/// ```
/// use bib_analysis::Binomial;
/// let d = Binomial::new(4, 0.5);
/// assert!((d.pmf(2) - 0.375).abs() < 1e-14);
/// assert!((d.cdf(4) - 1.0).abs() < 1e-14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution; panics unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Binomial p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass `Pr[X = k] = C(n, k) p^k (1−p)^{n−k}`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        self.ln_pmf(k).exp()
    }

    /// Natural logarithm of the pmf (finite only for `0 ≤ k ≤ n` and
    /// `p ∈ (0, 1)`).
    pub fn ln_pmf(&self, k: u64) -> f64 {
        ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k.min(self.n)) as f64 * (1.0 - self.p).ln()
    }

    /// Cumulative distribution `Pr[X ≤ k] = I_{1−p}(n − k, k + 1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        beta_inc((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Survival function `Pr[X > k]`.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        // Pr[X > k] = I_p(k + 1, n − k).
        beta_inc(k as f64 + 1.0, (self.n - k) as f64, self.p)
    }

    /// Tail probability `Pr[X ≥ k]`, the quantity bounded in Lemma 3.2
    /// (`Pr{Bin(n/2, 1/n) ≥ 2} ≥ 1/20`).
    pub fn tail(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            self.sf(k - 1)
        }
    }

    /// Total-variation distance to a Poisson with the same mean, computed
    /// by direct summation over the effective support.
    ///
    /// Le Cam's inequality guarantees this is at most `2 n p²`; the test
    /// suite verifies our computation against that bound, and experiments
    /// use it to report the quality of the paper's Poissonisation step.
    pub fn tv_distance_to_poisson(&self) -> f64 {
        let poi = Poisson::new(self.mean().max(f64::MIN_POSITIVE));
        // Sum |pmf difference| over a support that captures all but ~1e-14
        // of both masses.
        let hi = {
            let mean = self.mean();
            let spread = 12.0 * (self.variance().max(mean) + 1.0).sqrt();
            ((mean + spread).ceil() as u64).min(self.n).max(32)
        };
        let mut acc = 0.0;
        for k in 0..=hi {
            acc += (self.pmf(k) - poi.pmf(k)).abs();
        }
        // Remaining tail mass of both distributions.
        acc += self.sf(hi) + poi.sf(hi);
        0.5 * acc
    }
}

/// Geometric distribution on `{1, 2, 3, …}` — the number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// This is exactly the law of the number of bin samples a single ball
/// makes under the `threshold`/`adaptive` protocols while the set of
/// accepting bins is static, and the engine-equivalence tests in
/// `bib-core` rely on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution; panics unless `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "Geometric p must be in (0,1], got {p}");
        Self { p }
    }

    /// Success probability per trial.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean number of trials `1/p`.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Probability mass `Pr[X = k] = (1−p)^{k−1} p` for `k ≥ 1`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        (1.0 - self.p).powi((k - 1) as i32) * self.p
    }

    /// Cumulative distribution `Pr[X ≤ k] = 1 − (1−p)^k`.
    pub fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 - self.p).powi(k as i32)
    }

    /// Survival function `Pr[X > k] = (1−p)^k`.
    pub fn sf(&self, k: u64) -> f64 {
        (1.0 - self.p).powi(k as i32)
    }
}

/// Hypergeometric distribution: drawing `k` items without replacement
/// from a population of `n` containing `s` marked items; `X` = number of
/// marked items drawn.
///
/// This is exactly the law of `|sample ∩ S|` when `bib-rng`'s
/// `sample_distinct(n, k)` is intersected with any fixed set `S` of size
/// `s` — the statistical contract its GOF test checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hypergeometric {
    n: u64,
    s: u64,
    k: u64,
}

impl Hypergeometric {
    /// Creates the distribution; panics unless `s ≤ n` and `k ≤ n`.
    pub fn new(n: u64, s: u64, k: u64) -> Self {
        assert!(s <= n, "marked items s={s} exceed population n={n}");
        assert!(k <= n, "draws k={k} exceed population n={n}");
        Self { n, s, k }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Marked items.
    pub fn s(&self) -> u64 {
        self.s
    }

    /// Draws.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Mean `k·s/n`.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.k as f64 * self.s as f64 / self.n as f64
        }
    }

    /// Support bounds `[max(0, k+s−n), min(k, s)]`.
    pub fn support(&self) -> (u64, u64) {
        ((self.k + self.s).saturating_sub(self.n), self.k.min(self.s))
    }

    /// Probability mass `Pr[X = x] = C(s,x)·C(n−s,k−x)/C(n,k)`.
    pub fn pmf(&self, x: u64) -> f64 {
        let (lo, hi) = self.support();
        if x < lo || x > hi {
            return 0.0;
        }
        (crate::special::ln_choose(self.s, x)
            + crate::special::ln_choose(self.n - self.s, self.k - x)
            - crate::special::ln_choose(self.n, self.k))
        .exp()
    }

    /// Cumulative distribution by direct summation over the (small)
    /// support.
    pub fn cdf(&self, x: u64) -> f64 {
        let (lo, _) = self.support();
        (lo..=x.min(self.support().1)).map(|j| self.pmf(j)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for &lam in &[0.1, 0.5, 199.0 / 198.0, 5.0, 50.0] {
            let d = Poisson::new(lam);
            let sum: f64 = (0..2000).map(|k| d.pmf(k)).sum();
            assert!(close(sum, 1.0, 1e-10), "λ={lam} sum={sum}");
        }
    }

    #[test]
    fn poisson_cdf_matches_partial_sums() {
        let d = Poisson::new(3.7);
        let mut acc = 0.0;
        for k in 0..40u64 {
            acc += d.pmf(k);
            assert!(close(d.cdf(k), acc, 1e-11), "k={k}");
            assert!(close(d.sf(k), 1.0 - acc, 1e-9), "k={k}");
        }
    }

    #[test]
    fn poisson_tail_is_complement() {
        let d = Poisson::new(2.0);
        // Identity: tail(k) = 1 − cdf(k−1).
        for k in 1..20u64 {
            assert!(close(d.tail(k), 1.0 - d.cdf(k - 1), 1e-10), "k={k}");
        }
        assert!(close(d.tail(0), 1.0, 1e-15));
    }

    #[test]
    fn poisson_quantile_inverts_cdf() {
        let d = Poisson::new(7.3);
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            let k = d.quantile(p);
            assert!(d.cdf(k) >= p, "p={p} k={k}");
            if k > 0 {
                assert!(d.cdf(k - 1) < p, "p={p} k={k}");
            }
        }
    }

    #[test]
    fn poisson_additivity() {
        // Poi(λ1) + Poi(λ2) ~ Poi(λ1+λ2): check via convolution of pmfs.
        let (a, b) = (Poisson::new(0.5), Poisson::new(100.0 / 198.0));
        let c = Poisson::new(0.5 + 100.0 / 198.0); // = Poi(199/198), as in Lemma 3.2
        for k in 0..15u64 {
            let conv: f64 = (0..=k).map(|i| a.pmf(i) * b.pmf(k - i)).sum();
            assert!(close(conv, c.pmf(k), 1e-12), "k={k}");
        }
    }

    #[test]
    #[should_panic]
    fn poisson_rejects_zero_rate() {
        Poisson::new(0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.3), (10, 0.5), (100, 0.01), (50, 0.99)] {
            let d = Binomial::new(n, p);
            let sum: f64 = (0..=n).map(|k| d.pmf(k)).sum();
            assert!(close(sum, 1.0, 1e-10), "n={n} p={p}");
        }
    }

    #[test]
    fn binomial_cdf_matches_partial_sums() {
        let d = Binomial::new(30, 0.2);
        let mut acc = 0.0;
        for k in 0..=30u64 {
            acc += d.pmf(k);
            assert!(close(d.cdf(k), acc, 1e-10), "k={k}");
        }
    }

    #[test]
    fn binomial_sf_complements_cdf() {
        let d = Binomial::new(25, 0.37);
        for k in 0..=25u64 {
            assert!(close(d.cdf(k) + d.sf(k), 1.0, 1e-11), "k={k}");
        }
    }

    #[test]
    fn binomial_degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(3), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert_eq!(one.sf(9), 1.0);
    }

    #[test]
    fn lemma32_binomial_tail_exceeds_one_twentieth() {
        // The paper: Pr{Bin(n/2, 1/n) ≥ 2} ≥ (1/2)(1−1/n)^{n−1} ≫ 1/20.
        for &n in &[64u64, 256, 1024, 65_536] {
            let d = Binomial::new(n / 2, 1.0 / n as f64);
            assert!(d.tail(2) > 1.0 / 20.0, "n={n} tail={}", d.tail(2));
        }
    }

    #[test]
    fn binomial_poisson_tv_distance_obeys_le_cam() {
        for &(n, p) in &[(100u64, 0.01), (1000, 0.001), (50, 0.02)] {
            let d = Binomial::new(n, p);
            let tv = d.tv_distance_to_poisson();
            assert!(tv >= 0.0);
            assert!(tv <= 2.0 * n as f64 * p * p + 1e-12, "n={n} p={p} tv={tv}");
        }
    }

    #[test]
    fn binomial_poisson_limit_lemma32_quality() {
        // Bin(n/2, 1/n) → Poi(1/2): at n = 2^16 the pointwise error at
        // k ≤ 4 must be far below the 1e-10 slack the paper allows.
        let n = 1u64 << 16;
        let b = Binomial::new(n / 2, 1.0 / n as f64);
        let p = Poisson::new(0.5);
        for k in 0..=4u64 {
            assert!((b.pmf(k) - p.pmf(k)).abs() < 1e-4, "k={k}");
        }
    }

    #[test]
    fn geometric_basic_identities() {
        let g = Geometric::new(0.25);
        assert!(close(g.mean(), 4.0, 1e-15));
        let sum: f64 = (1..200u64).map(|k| g.pmf(k)).sum();
        assert!(close(sum, 1.0, 1e-10));
        for k in 0..50u64 {
            assert!(close(g.cdf(k) + g.sf(k), 1.0, 1e-12), "k={k}");
        }
        assert_eq!(g.pmf(0), 0.0);
    }

    #[test]
    fn geometric_certain_success() {
        let g = Geometric::new(1.0);
        assert_eq!(g.pmf(1), 1.0);
        assert_eq!(g.pmf(2), 0.0);
        assert_eq!(g.cdf(1), 1.0);
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        for &(n, s, k) in &[(10u64, 4u64, 3u64), (50, 20, 10), (7, 7, 3), (9, 0, 4)] {
            let d = Hypergeometric::new(n, s, k);
            let (lo, hi) = d.support();
            let sum: f64 = (lo..=hi).map(|x| d.pmf(x)).sum();
            assert!(close(sum, 1.0, 1e-12), "({n},{s},{k}) sum={sum}");
        }
    }

    #[test]
    fn hypergeometric_known_value() {
        // Classic urn: 5 red of 10, draw 4; Pr[X=2] = C(5,2)C(5,2)/C(10,4)
        // = 100/210.
        let d = Hypergeometric::new(10, 5, 4);
        assert!(close(d.pmf(2), 100.0 / 210.0, 1e-12));
        assert!(close(d.mean(), 2.0, 1e-12));
    }

    #[test]
    fn hypergeometric_support_edges() {
        // Draw more than the unmarked count: lower bound > 0.
        let d = Hypergeometric::new(10, 8, 5);
        assert_eq!(d.support(), (3, 5));
        assert_eq!(d.pmf(2), 0.0);
        assert!(d.pmf(3) > 0.0);
        assert!(close(d.cdf(5), 1.0, 1e-12));
    }

    #[test]
    fn hypergeometric_degenerate_all_marked() {
        let d = Hypergeometric::new(6, 6, 4);
        assert_eq!(d.pmf(4), 1.0);
        assert_eq!(d.support(), (4, 4));
    }

    #[test]
    #[should_panic]
    fn hypergeometric_rejects_s_above_n() {
        Hypergeometric::new(5, 6, 2);
    }
}
