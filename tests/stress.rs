//! Heavy stress tests, `#[ignore]`d by default. Run explicitly:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These validate the paper's bounds at sizes close to the experiment
//! harness's full configurations — minutes, not seconds, in debug mode,
//! hence the opt-in.

use balls_into_bins::core::prelude::*;

/// Lemma 4.2 regime at full experiment scale: n = 4096, m = n² ≈ 16.8M,
/// jump engine. The max-load bound must hold and the smooth/rough
/// separation must be an order of magnitude.
#[test]
#[ignore = "heavy: m = n^2 with n = 4096"]
fn full_scale_n_squared_separation() {
    let n = 4096usize;
    let cfg = RunConfig::new(n, (n as u64) * (n as u64)).with_engine(Engine::Jump);
    let ada = run_protocol(&Adaptive::paper(), &cfg, 1);
    let thr = run_protocol(&Threshold, &cfg, 1);
    assert!(ada.max_load() as u64 <= cfg.max_load_bound());
    assert!(thr.max_load() as u64 <= cfg.max_load_bound());
    assert!(
        thr.psi() > 10.0 * ada.psi(),
        "thr {} vs ada {}",
        thr.psi(),
        ada.psi()
    );
    assert!(ada.psi() < 4.0 * n as f64);
}

/// Theorem 4.1 at n = 2¹⁸: the envelope constant stays in the band seen
/// in the E5 table (≈ 0.25–0.35).
#[test]
#[ignore = "heavy: n = 262144"]
fn threshold_envelope_at_quarter_million_bins() {
    let n = 1usize << 18;
    let phi = 16u64;
    let m = phi * n as u64;
    let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
    let out = run_protocol(&Threshold, &cfg, 2);
    let env = (m as f64).powf(0.75) * (n as f64).powf(0.25);
    let norm = out.excess_samples() as f64 / env;
    assert!(norm > 0.1 && norm < 1.0, "normalised excess {norm}");
}

/// Corollary 3.5 at n = 2¹⁸: gap stays within a small multiple of log n.
#[test]
#[ignore = "heavy: n = 262144"]
fn adaptive_gap_at_quarter_million_bins() {
    let n = 1usize << 18;
    let cfg = RunConfig::new(n, 32 * n as u64).with_engine(Engine::Jump);
    let out = run_protocol(&Adaptive::paper(), &cfg, 3);
    assert!(out.max_load() as u64 <= cfg.max_load_bound());
    assert!(
        (out.gap() as f64) < 3.0 * (n as f64).log2(),
        "gap {} at n = {n}",
        out.gap()
    );
}

/// Faithful engine at moderate-heavy scale: agreement with the jump
/// engine on the time ratio within 1%.
#[test]
#[ignore = "heavy: faithful engine, m = 8.4M"]
fn faithful_engine_full_agreement() {
    let n = 1usize << 16;
    let m = 128 * n as u64;
    let ratio = |engine: Engine| -> f64 {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        run_protocol(&Threshold, &cfg, 4).time_ratio()
    };
    let (faithful, jump) = (ratio(Engine::Faithful), ratio(Engine::Jump));
    assert!(
        (faithful - jump).abs() < 0.01,
        "faithful {faithful} vs jump {jump}"
    );
}
