//! The Poissonised model of Lemma A.7 and the hole-counting machinery of
//! Theorem 4.1's proof.
//!
//! The proof of Theorem 4.1 replaces the *access distribution*
//! `X^t_1, …, X^t_n` (how often each bin index appears among the first
//! `t` entries of the choice vector `C`) by independent Poisson
//! variables `Y_i ~ Poi(t/n)` (Lemma A.7), sets
//! `L_i = min(X_i, ϕ + 1)` and tracks the total *holes*
//! `W_t = Σ max(ϕ + 1 − L_i, 0)`. The protocol has placed all `m = ϕn`
//! balls as soon as `W_t ≤ n`, and the proof shows `W_T ≤ n` w.h.p. at
//! `T = αn` with `α = ϕ + ϕ^{3/4} + 1`.
//!
//! This module implements both sides so tests and experiments can check
//! the coupling quantitatively:
//!
//! * [`access_distribution`] — the exact process: throw `t` uniform
//!   samples, count per-bin accesses;
//! * [`poisson_access_model`] — the independent-Poisson surrogate;
//! * [`holes_at`] — `W_t` under either model;
//! * [`theorem41_alpha`] — the proof's stopping time constant.

use bib_rng::dist::{Distribution, PoissonSampler};
use bib_rng::{Rng64, RngExt};

/// Exact access distribution: how many of `t` uniform throws hit each of
/// the `n` bins. (This is the law of `X^t` in the proof.)
pub fn access_distribution<R: Rng64 + ?Sized>(n: usize, t: u64, rng: &mut R) -> Vec<u32> {
    assert!(n > 0);
    let mut x = vec![0u32; n];
    for _ in 0..t {
        x[rng.range_usize(n)] += 1;
    }
    x
}

/// Poissonised surrogate: `n` independent `Poi(t/n)` access counts
/// (the law of `Y` in Lemma A.7's process `P2`).
pub fn poisson_access_model<R: Rng64 + ?Sized>(n: usize, t: u64, rng: &mut R) -> Vec<u32> {
    assert!(n > 0);
    if t == 0 {
        return vec![0; n];
    }
    let sampler = PoissonSampler::new(t as f64 / n as f64);
    (0..n)
        .map(|_| {
            u32::try_from(sampler.sample(rng))
                .expect("Poisson(t/n) access count exceeds u32 — loads are u32 workspace-wide")
        })
        .collect()
}

/// The holes functional of Theorem 4.1's proof: with target height
/// `h = ϕ + 1`, `W = Σ_i max(h − min(access_i, h), 0)`
/// `= Σ_i max(h − access_i, 0)`.
pub fn holes_at(access: &[u32], phi: u64) -> u64 {
    let h = phi + 1;
    access.iter().map(|&x| h.saturating_sub(x as u64)).sum()
}

/// The proof's stopping time: `T = α·n` with `α = ϕ + ϕ^{3/4} + 1`.
pub fn theorem41_alpha(phi: u64) -> f64 {
    let p = phi as f64;
    p + p.powf(0.75) + 1.0
}

/// Convenience: the number of access-vector entries needed until the
/// threshold protocol with `m = ϕn` has certainly finished under the
/// holes criterion, estimated by simulation of the *exact* process.
/// Returns `(t, W_t)` at the first multiple of `n/4` where `W_t ≤ n`.
pub fn simulate_until_filled<R: Rng64 + ?Sized>(n: usize, phi: u64, rng: &mut R) -> (u64, u64) {
    let mut access = vec![0u32; n];
    let mut t = 0u64;
    let step = (n as u64 / 4).max(1);
    loop {
        for _ in 0..step {
            access[rng.range_usize(n)] += 1;
        }
        t += step;
        let w = holes_at(&access, phi);
        if w <= n as u64 {
            return (t, w);
        }
        assert!(
            t < 100 * (phi + 1) * n as u64,
            "holes failed to drain — model bug"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn access_distribution_conserves_mass() {
        let mut rng = SplitMix64::new(1);
        let x = access_distribution(64, 1000, &mut rng);
        assert_eq!(x.iter().map(|&v| v as u64).sum::<u64>(), 1000);
        assert_eq!(x.len(), 64);
    }

    #[test]
    fn poisson_model_mass_close_to_t() {
        // Σ Yᵢ ~ Poi(t): within 5 sigma of t.
        let mut rng = SplitMix64::new(2);
        let t = 100_000u64;
        let y = poisson_access_model(512, t, &mut rng);
        let total: u64 = y.iter().map(|&v| v as u64).sum();
        let sd = (t as f64).sqrt();
        assert!(
            (total as f64 - t as f64).abs() < 5.0 * sd,
            "total {total} vs t {t}"
        );
    }

    #[test]
    fn holes_identities() {
        // No accesses: W = n(ϕ+1).
        assert_eq!(holes_at(&[0, 0, 0], 4), 15);
        // Everyone at or above ϕ+1: W = 0.
        assert_eq!(holes_at(&[5, 6, 9], 4), 0);
        // Mixed.
        assert_eq!(holes_at(&[2, 7, 0], 4), 3 + 5);
    }

    #[test]
    fn theorem41_alpha_values() {
        assert!((theorem41_alpha(16) - (16.0 + 8.0 + 1.0)).abs() < 1e-12);
        assert!(theorem41_alpha(1) > 2.0);
    }

    /// The proof's core quantitative step, checked empirically: at
    /// `T = αn` the exact process has `W_T ≤ n` (w.h.p.; we check on a
    /// handful of seeds).
    #[test]
    fn holes_drain_by_alpha_n_exact_process() {
        let n = 2048usize;
        let phi = 64u64;
        let t = (theorem41_alpha(phi) * n as f64).ceil() as u64;
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let x = access_distribution(n, t, &mut rng);
            let w = holes_at(&x, phi);
            assert!(w <= n as u64, "seed {seed}: W_T = {w} > n = {n}");
        }
    }

    /// Lemma A.7 in action: the Poisson surrogate drains on the same
    /// schedule as the exact process.
    #[test]
    fn holes_drain_by_alpha_n_poisson_model() {
        let n = 2048usize;
        let phi = 64u64;
        let t = (theorem41_alpha(phi) * n as f64).ceil() as u64;
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(100 + seed);
            let y = poisson_access_model(n, t, &mut rng);
            let w = holes_at(&y, phi);
            assert!(w <= n as u64, "seed {seed}: W_T = {w} > n = {n}");
        }
    }

    /// The drained time from simulation matches the α envelope: the
    /// measured fill time sits between m and αn.
    #[test]
    fn simulated_fill_time_within_envelope() {
        let n = 1024usize;
        let phi = 16u64;
        let mut rng = SplitMix64::new(3);
        let (t, w) = simulate_until_filled(n, phi, &mut rng);
        assert!(w <= n as u64);
        assert!(t >= phi * n as u64, "cannot finish before m");
        let alpha_n = (theorem41_alpha(phi) * n as f64) as u64;
        assert!(
            t <= alpha_n + n as u64,
            "fill time {t} beyond envelope {alpha_n}"
        );
    }

    /// Coupling strength: exact and Poisson hole counts at the same t are
    /// close (their difference is within a few √n·ϕ^{1/4}).
    #[test]
    fn exact_and_poisson_holes_are_close() {
        let n = 4096usize;
        let phi = 16u64;
        let t = phi * n as u64; // mid-drain: holes still ~ m^{3/4}n^{1/4} scale
        let reps = 10;
        let mut diff_sum = 0.0f64;
        for seed in 0..reps {
            let mut r1 = SplitMix64::new(seed);
            let mut r2 = SplitMix64::new(1000 + seed);
            let wx = holes_at(&access_distribution(n, t, &mut r1), phi) as f64;
            let wy = holes_at(&poisson_access_model(n, t, &mut r2), phi) as f64;
            diff_sum += (wx - wy).abs() / wx.max(wy).max(1.0);
        }
        let mean_rel_diff = diff_sum / reps as f64;
        assert!(
            mean_rel_diff < 0.25,
            "exact vs Poisson holes diverge: {mean_rel_diff}"
        );
    }
}
