//! D1 suppressed fixture.
// lint:allow(D1): debug-only scaffolding, stripped before any Outcome is produced
use std::time::Instant;

pub fn debug_probe() {
    // lint:allow(D1): same scaffolding as above
    let _ = Instant::now();
}
