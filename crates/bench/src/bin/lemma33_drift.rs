//! **Lemmas 3.3/3.4 — the potential drift, observed directly.**
//!
//! The heart of the paper's analysis: whenever `Φ(L^τ) ≥ ρ_n`, one stage
//! of `adaptive` contracts the expected exponential potential:
//! `E[Φ(L^{τ+1})] ≤ (1 − κ/2)·Φ(L^τ)` with κ ≈ 1.27·10⁻⁵.
//!
//! We start from *adversarially imbalanced* load vectors — half the bins
//! `2d` high, half empty, with `d` chosen so Φ₀/n hits a target level —
//! and run adaptive stages (n balls at the stage-consistent acceptance
//! bound), tracking Φ/n. Expected physics: underloaded bins receive ≈ 2
//! balls per stage while the average rises by 1, so each hole shrinks by
//! ≈ 1 level per stage and Φ contracts by ≈ 1 − (1+ε)⁻¹ ≈ ε/(1+ε) ≈
//! 0.5% per stage — geometric decay, two to three orders of magnitude
//! stronger than the paper's worst-case κ/2, but visibly *slow*, which
//! is exactly why the paper's drift argument needs the exponential
//! potential rather than a cruder one.
//!
//! ```text
//! cargo run --release -p bib-bench --bin lemma33_drift [-- --quick --csv]
//! ```

use bib_analysis::paper;
use bib_bench::{f, ExpArgs, Table};
use bib_core::partitioned::PartitionedBins;
use bib_core::potential::{exponential_potential, EPSILON};
use bib_core::protocol::Engine;
use bib_core::sampler::place_below;
use bib_rng::SeedSequence;

/// Half the bins at `2d`, half empty: `t/n = d` exactly, and
/// `Φ/n ≈ (1+ε)^{d+2}/2`, so `d = ⌈log_{1+ε}(2·target)⌉ − 2` hits the
/// requested level.
fn imbalanced_start(n: usize, target_phi_over_n: f64) -> (Vec<u32>, u32) {
    let d = (((2.0 * target_phi_over_n).ln() / (1.0 + EPSILON).ln()).ceil() as u32)
        .saturating_sub(2)
        .max(2);
    let mut loads = vec![0u32; n];
    for l in loads.iter_mut().skip(n / 2) {
        *l = 2 * d;
    }
    (loads, d)
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(4_096usize, 512usize);
    let reps = args.reps_or(5, 2);
    let consts = paper::constants();

    println!("# Lemma 3.3/3.4: per-stage contraction of Phi from imbalanced starts; n = {n}, {reps} reps");
    println!(
        "# paper worst-case guarantee: contraction ≥ κ/2 = {} per stage while Phi ≥ ρ_n = {}·n",
        f(consts.kappa / 2.0),
        f(consts.rho_over_n)
    );
    println!(
        "# naive drift estimate for this start shape: ≈ ε/(1+ε) = {}\n",
        f(EPSILON / (1.0 + EPSILON))
    );

    let mut table = Table::new(vec![
        "phi0/n",
        "stage",
        "phi/n",
        "per-stage contraction",
        "vs kappa/2",
    ]);

    for &target in args.pick(&[16.0, 256.0, 4096.0][..], &[16.0, 256.0][..]) {
        let (start, d) = imbalanced_start(n, target);
        let horizon = args.pick(3 * d, d.min(60));
        let checkpoints: Vec<u32> = {
            let mut v = vec![1, 2, 5];
            let mut s = 10;
            while s < horizon {
                v.push(s);
                s *= 2;
            }
            v.push(horizon);
            v
        };
        let mut mean_phi: Vec<f64> = vec![0.0; horizon as usize + 1];
        for rep in 0..reps {
            let mut rng = SeedSequence::new(args.seed)
                .child(target as u64)
                .child(rep)
                .rng();
            let mut bins = PartitionedBins::from_loads(start.clone());
            mean_phi[0] += exponential_potential(bins.as_slice(), bins.total(), EPSILON)
                / n as f64
                / reps as f64;
            // Continue the adaptive schedule: the start has t = d·n, so
            // the next stage is d + 1 with acceptance bound d + 2.
            for s in 1..=horizon {
                let bound = d + s + 1;
                for _ in 0..n {
                    place_below(&mut bins, bound, Engine::Jump, &mut rng);
                }
                mean_phi[s as usize] +=
                    exponential_potential(bins.as_slice(), bins.total(), EPSILON)
                        / n as f64
                        / reps as f64;
            }
        }
        let mut prev_cp = 0u32;
        for &cp in &checkpoints {
            let span = (cp - prev_cp) as f64;
            let ratio = mean_phi[cp as usize] / mean_phi[prev_cp as usize];
            let per_stage = 1.0 - ratio.powf(1.0 / span);
            table.row(vec![
                f(target),
                cp.to_string(),
                f(mean_phi[cp as usize]),
                f(per_stage),
                f(per_stage / (consts.kappa / 2.0)),
            ]);
            prev_cp = cp;
        }
    }

    table.print(&args);
    println!("\n# Expected shape: phi/n decays geometrically at every level (contraction");
    println!("# ≈ 0.005 ≈ ε per stage, hundreds of times the paper's worst-case κ/2),");
    println!("# eventually approaching the O(1) fixed point of Corollary 3.5.");
}
