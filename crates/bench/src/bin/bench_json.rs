//! **E12 — engine/protocol perf matrix** → `BENCH_engines.json`.
//!
//! Runs `threshold` and `adaptive` under every engine at fixed sizes,
//! measures wall time, and writes a machine-readable JSON record so the
//! perf trajectory is tracked in-repo from this PR on. The committed
//! `BENCH_engines.json` at the repo root is a full run on the reference
//! machine; CI re-runs `--smoke` to catch engine regressions that break
//! the run itself.
//!
//! ```text
//! cargo run --release -p bib-bench --bin bench_json [-- --smoke --out PATH --seed <u64>]
//! ```

use bib_core::prelude::*;
use bib_core::run::run_protocol;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured cell of the matrix.
struct Cell {
    protocol: String,
    engine: Engine,
    n: usize,
    m: u64,
    reps: u64,
    wall_ms_mean: f64,
    samples_per_ball: f64,
    mballs_per_sec: f64,
}

fn measure<P: Protocol>(proto: &P, cfg: &RunConfig, seed: u64, reps: u64) -> Cell {
    let mut wall_ms = 0.0f64;
    let mut samples = 0u64;
    for rep in 0..reps {
        let start = Instant::now();
        let out = run_protocol(proto, cfg, seed.wrapping_add(rep));
        wall_ms += start.elapsed().as_secs_f64() * 1e3;
        samples += out.total_samples;
    }
    let wall_ms_mean = wall_ms / reps as f64;
    Cell {
        protocol: proto.name(),
        engine: cfg.engine,
        n: cfg.n,
        m: cfg.m,
        reps,
        wall_ms_mean,
        samples_per_ball: if cfg.m == 0 {
            0.0
        } else {
            samples as f64 / (reps * cfg.m) as f64
        },
        mballs_per_sec: cfg.m as f64 / wall_ms_mean / 1e3,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_engines.json");
    let mut seed = 2013u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a u64");
            }
            other => panic!("unknown flag {other}; supported: --smoke --out <path> --seed <u64>"),
        }
    }

    // (n, phi) grid: light (phi = 16), heavy (phi = 256) and the
    // Lemma 4.2 regime (m = n², phi = n) where the engines separate.
    let sizes: Vec<(usize, u64, u64)> = if smoke {
        vec![(256, 4, 3), (512, 32, 3), (512, 512, 3)]
    } else {
        vec![(4096, 16, 5), (4096, 256, 5), (10_000, 10_000, 3)]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &(n, phi, reps) in &sizes {
        let m = phi * n as u64;
        for engine in Engine::ALL {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            cells.push(measure(&Threshold, &cfg, seed, reps));
            cells.push(measure(&Adaptive::paper(), &cfg, seed, reps));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bib-bench/engines/v1\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"protocol\": \"{}\", \"engine\": \"{}\", \"n\": {}, \"m\": {}, \
             \"reps\": {}, \"wall_ms_mean\": {:.3}, \"samples_per_ball\": {:.6}, \
             \"mballs_per_sec\": {:.3}}}",
            c.protocol,
            c.engine,
            c.n,
            c.m,
            c.reps,
            c.wall_ms_mean,
            c.samples_per_ball,
            c.mballs_per_sec
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    // Human-readable echo.
    println!("# wrote {out_path} ({} cells)", cells.len());
    println!(
        "{:<12} {:>14} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "protocol", "engine", "n", "m", "wall_ms", "samples/ball", "Mballs/s"
    );
    for c in &cells {
        println!(
            "{:<12} {:>14} {:>8} {:>12} {:>12.3} {:>14.4} {:>12.2}",
            c.protocol, c.engine, c.n, c.m, c.wall_ms_mean, c.samples_per_ball, c.mballs_per_sec
        );
    }
}
