//! The rule engine: file classification, the six rule families, and
//! pragma suppression.
//!
//! Every rule works on the flat token stream from [`crate::lexer`], so
//! comments and string literals can never trigger a finding. Scoping is
//! by *crate directory* and *section* (src vs tests/benches/examples),
//! and `#[cfg(test)]` modules inside `src/` are carved out for the
//! rules that only govern library code.
//!
//! | rule | contract |
//! |------|----------|
//! | D1   | no `Instant`/`SystemTime` outside `crates/bench` and `crates/compat/criterion` |
//! | D2   | no `HashMap`/`HashSet` in Outcome-producing crates (hash-order iteration breaks replay) |
//! | D3   | no ambient-entropy RNG construction (`from_entropy`, `thread_rng`, `OsRng`, …) |
//! | P1   | no bare `unwrap()` / `expect("")` in library code of core/parallel/reloc/rng |
//! | N1   | no narrowing `as` casts to ≤32-bit integers in core/parallel load arithmetic |
//! | C1   | `unsafe`/atomics/memory orderings demand adjacent `// SAFETY:`/`// ORDERING:`; `src/lib.rs` must `#![forbid(unsafe_code)]` |
//! | C2   | CAS retry loops (`compare_exchange`/`compare_exchange_weak`/`fetch_update`) demand an adjacent `// RETRY:` termination argument |
//!
//! Suppression: `// lint:allow(RULE): justification` on the offending
//! line or the line directly above. The justification is mandatory —
//! an empty one is itself a finding (rule `pragma`).

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// Which part of a crate a file lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` — library or binary code shipped by the crate.
    Src,
    /// `tests/` integration tests.
    Tests,
    /// `benches/` benchmarks.
    Benches,
    /// `examples/`.
    Examples,
    /// Anything else (build scripts, top-level files).
    Other,
}

/// One audited source file, classified and lexed.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Crate directory key: `core`, `parallel`, `compat/rand`, `lint`,
    /// or `root` for the top-level package.
    pub crate_dir: String,
    /// Which section of the crate the file is in.
    pub section: Section,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_lines: Vec<(u32, u32)>,
}

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`D1`, `P1`, `pragma`, `allowlist`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-oriented description with the repair direction.
    pub message: String,
}

/// A parsed `lint:allow` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules the pragma names.
    pub rules: Vec<String>,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Whether a non-empty justification followed the rule list.
    pub justified: bool,
}

impl SourceFile {
    /// Classifies and lexes `src` as the file at `rel_path`.
    pub fn parse(rel_path: &str, src: &str) -> Self {
        let (crate_dir, section) = classify(rel_path);
        let lexed = lex(src);
        let test_lines = cfg_test_ranges(&lexed.tokens);
        Self {
            rel_path: rel_path.to_string(),
            crate_dir,
            section,
            lexed,
            test_lines,
        }
    }

    fn in_test_code(&self, line: u32) -> bool {
        self.section != Section::Src
            || self
                .test_lines
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Derives `(crate_dir, section)` from a workspace-relative path.
fn classify(rel_path: &str) -> (String, Section) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_dir, rest) = if parts.first() == Some(&"crates") {
        if parts.get(1) == Some(&"compat") && parts.len() > 3 {
            (format!("compat/{}", parts[2]), &parts[3..])
        } else if parts.len() > 2 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("root".to_string(), &parts[1..])
        }
    } else {
        ("root".to_string(), &parts[..])
    };
    let section = match rest.first() {
        Some(&"src") => Section::Src,
        Some(&"tests") => Section::Tests,
        Some(&"benches") => Section::Benches,
        Some(&"examples") => Section::Examples,
        _ => Section::Other,
    };
    (crate_dir, section)
}

/// Finds inclusive line ranges of items annotated `#[cfg(test)]` (or
/// any `cfg(…)` whose argument list mentions `test`): the attribute,
/// optional further attributes, then the next braced item.
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            // Skip any further attributes on the same item.
            let mut j = after_attr;
            while tokens.get(j).is_some_and(|t| t.text == "#") {
                j = skip_attr(tokens, j);
            }
            // Find the item's opening brace (before any `;`, which
            // would mean a braceless item like `mod tests;`).
            let mut k = j;
            while let Some(t) = tokens.get(k) {
                if t.text == ";" {
                    break;
                }
                if t.text == "{" {
                    let end = matching_brace(tokens, k);
                    ranges.push((tokens[i].line, tokens[end.min(tokens.len() - 1)].line));
                    break;
                }
                k += 1;
            }
            i = after_attr;
        } else {
            i += 1;
        }
    }
    ranges
}

/// If `tokens[i..]` starts a `#[cfg(…test…)]` attribute, returns the
/// index just past its closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    if tokens.get(i + 2)?.text != "cfg" || tokens.get(i + 3)?.text != "(" {
        return None;
    }
    let close = matching_delim(tokens, i + 3, "(", ")");
    let mentions_test = tokens[i + 3..=close.min(tokens.len() - 1)]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "test");
    if !mentions_test {
        return None;
    }
    // Past the `)` there must be the attribute's `]`.
    let after = close + 1;
    if tokens.get(after).is_some_and(|t| t.text == "]") {
        Some(after + 1)
    } else {
        None
    }
}

/// Skips a `#[…]` attribute starting at `i`, returning the index just
/// past its `]`. Returns `i + 1` if no attribute starts here.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    if tokens.get(i).is_some_and(|t| t.text == "#")
        && tokens.get(i + 1).is_some_and(|t| t.text == "[")
    {
        matching_delim(tokens, i + 1, "[", "]") + 1
    } else {
        i + 1
    }
}

/// Index of the delimiter matching `tokens[open_idx]`; saturates at the
/// last token on unbalanced input.
fn matching_delim(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn matching_brace(tokens: &[Token], open_idx: usize) -> usize {
    matching_delim(tokens, open_idx, "{", "}")
}

/// Parses every `lint:allow(…)` pragma out of the file's comments.
pub fn pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        // Only a comment that *is* a pragma counts — prose that merely
        // mentions `lint:allow(…)` (docs, this file) is ignored.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim_start();
        let justified = tail
            .strip_prefix(':')
            .map(str::trim)
            .is_some_and(|j| !j.is_empty());
        out.push(Pragma {
            rules,
            line: c.line,
            justified,
        });
    }
    out
}

/// The crates whose results feed `Outcome` records; hash-order
/// iteration anywhere in them (tests included — the equivalence suites
/// compare distributions) risks run-to-run nondeterminism.
const OUTCOME_CRATES: &[&str] = &["core", "parallel", "reloc", "bench", "root"];

/// The crates whose `src/` is governed by the panic policy (P1).
const PANIC_POLICY_CRATES: &[&str] = &["core", "parallel", "reloc", "rng"];

/// The crates whose `src/` is governed by the narrowing-cast rule (N1).
const CAST_CRATES: &[&str] = &["core", "parallel"];

/// Crates allowed to read wall clocks (D1): the bench harness and the
/// criterion stand-in measure time by definition.
const CLOCK_CRATES: &[&str] = &["bench", "compat/criterion"];

/// All rule identifiers a pragma or allowlist entry may name.
pub const RULE_IDS: &[&str] = &["D1", "D2", "D3", "P1", "N1", "C1", "C2"];

/// Runs every rule over one file and returns the *unsuppressed*
/// findings (pragma handling included).
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut raw = Vec::new();
    rule_d1(file, &mut raw);
    rule_d2(file, &mut raw);
    rule_d3(file, &mut raw);
    rule_p1(file, &mut raw);
    rule_n1(file, &mut raw);
    rule_c1(file, &mut raw);
    rule_c2(file, &mut raw);
    apply_pragmas(file, raw)
}

/// Drops findings covered by a justified pragma on the same or the
/// preceding line; flags unjustified or unknown-rule pragmas.
fn apply_pragmas(file: &SourceFile, raw: Vec<Finding>) -> Vec<Finding> {
    let pragmas = pragmas(&file.lexed.comments);
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !pragmas.iter().any(|p| {
                p.justified
                    && p.rules.iter().any(|r| r == f.rule)
                    && (p.line == f.line || p.line + 1 == f.line)
            })
        })
        .collect();
    for p in &pragmas {
        if !p.justified {
            out.push(Finding {
                rule: "pragma",
                file: file.rel_path.clone(),
                line: p.line,
                message: format!(
                    "lint:allow({}) needs a justification: `// lint:allow({}): <why this is sound>`",
                    p.rules.join(", "),
                    p.rules.join(", "),
                ),
            });
        }
        for r in &p.rules {
            if !RULE_IDS.contains(&r.as_str()) {
                out.push(Finding {
                    rule: "pragma",
                    file: file.rel_path.clone(),
                    line: p.line,
                    message: format!("lint:allow names unknown rule `{r}` (known: {RULE_IDS:?})"),
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn finding(file: &SourceFile, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
    }
}

/// D1 — wall-clock types leak nondeterminism into anything they touch;
/// only the bench harness may measure time.
fn rule_d1(file: &SourceFile, out: &mut Vec<Finding>) {
    if CLOCK_CRATES.contains(&file.crate_dir.as_str()) {
        return;
    }
    for t in idents(&file.lexed.tokens) {
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(finding(
                file,
                "D1",
                t.line,
                format!(
                    "`{}` outside crates/bench and crates/compat/criterion: wall clocks are \
                     outside the determinism envelope; thread timing through the bench harness",
                    t.text
                ),
            ));
        }
    }
}

/// D2 — `HashMap`/`HashSet` iteration order varies run to run; in the
/// Outcome-producing crates require `BTreeMap`/`BTreeSet` or an
/// explicit sort.
fn rule_d2(file: &SourceFile, out: &mut Vec<Finding>) {
    if !OUTCOME_CRATES.contains(&file.crate_dir.as_str()) {
        return;
    }
    for t in idents(&file.lexed.tokens) {
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(finding(
                file,
                "D2",
                t.line,
                format!(
                    "`{}` in an Outcome-producing crate: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or sort before iterating",
                    t.text
                ),
            ));
        }
    }
}

/// D3 — every RNG must be constructed from the `bib_rng::seed` path
/// types (`SeedSequence`/`StreamRng`/`default_rng`); ambient entropy
/// makes a run unreproducible by construction.
fn rule_d3(file: &SourceFile, out: &mut Vec<Finding>) {
    const ENTROPY: &[&str] = &[
        "from_entropy",
        "thread_rng",
        "ThreadRng",
        "OsRng",
        "getrandom",
        "random_seed",
    ];
    for t in idents(&file.lexed.tokens) {
        if ENTROPY.contains(&t.text.as_str()) {
            out.push(finding(
                file,
                "D3",
                t.line,
                format!(
                    "`{}` draws ambient entropy: construct RNGs from SeedSequence/StreamRng \
                     (crates/rng/src/seed.rs) so every stream is replayable",
                    t.text
                ),
            ));
        }
    }
}

/// P1 — library code in the simulation crates must not panic without
/// stating the violated invariant: `.unwrap()` and `.expect("")` carry
/// no diagnosis when a run dies hours into a sweep.
fn rule_p1(file: &SourceFile, out: &mut Vec<Finding>) {
    if !PANIC_POLICY_CRATES.contains(&file.crate_dir.as_str()) || file.section != Section::Src {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "." || file.in_test_code(toks[i].line) {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokenKind::Ident {
            continue;
        }
        let bare_unwrap = name.text == "unwrap"
            && toks.get(i + 2).is_some_and(|t| t.text == "(")
            && toks.get(i + 3).is_some_and(|t| t.text == ")");
        let empty_expect = name.text == "expect"
            && toks.get(i + 2).is_some_and(|t| t.text == "(")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Str && str_is_empty(&t.text))
            && toks.get(i + 4).is_some_and(|t| t.text == ")");
        if bare_unwrap || empty_expect {
            out.push(finding(
                file,
                "P1",
                name.line,
                format!(
                    "bare `{}` in library code: state the invariant \
                     (`.expect(\"<why this cannot fail>\")`) or return a Result",
                    if bare_unwrap {
                        "unwrap()"
                    } else {
                        "expect(\"\")"
                    },
                ),
            ));
        }
    }
}

/// Whether a string literal's written form is empty (`""`, `r""`, …).
fn str_is_empty(text: &str) -> bool {
    text.trim_start_matches(['b', 'r', '#'])
        .trim_end_matches('#')
        == "\"\""
}

/// N1 — narrowing `as` casts to ≤32-bit integers in the load/count
/// arithmetic crates silently truncate at m = n² scales; prefer
/// widening (`u64::from`), `try_into` with an invariant message, or
/// checked helpers. (Target-type heuristic: a cast *to* a ≤32-bit
/// integer is flagged regardless of source type, which a lexer cannot
/// know; provably-narrow sources are grandfathered via lint.toml.)
fn rule_n1(file: &SourceFile, out: &mut Vec<Finding>) {
    if !CAST_CRATES.contains(&file.crate_dir.as_str()) || file.section != Section::Src {
        return;
    }
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let toks = &file.lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text != "as" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        if file.in_test_code(toks[i].line) {
            continue;
        }
        // Exclude `use x as y` renames: the previous meaningful token
        // of a cast is never an ident path segment ending a `use` tree,
        // but renames are always `Ident as Ident` inside a `use` item.
        // Cheap disambiguation: casts to primitive types only.
        let target = &toks[i + 1];
        if target.kind == TokenKind::Ident && NARROW.contains(&target.text.as_str()) {
            out.push(finding(
                file,
                "N1",
                target.line,
                format!(
                    "narrowing cast `as {}` in count/load arithmetic: widen with `u64::from`, \
                     or use `try_into().expect(\"<range invariant>\")` / checked helpers",
                    target.text
                ),
            ));
        }
    }
}

/// C1 — the concurrency-readiness contract the sharded CAS engine will
/// be built under: unsafe code and atomics are only admissible with
/// their proof obligations written down next to them.
fn rule_c1(file: &SourceFile, out: &mut Vec<Finding>) {
    const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    const ATOMIC_OPS: &[&str] = &[
        "compare_exchange",
        "compare_exchange_weak",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "fetch_update",
    ];
    let toks = &file.lexed.tokens;

    // (a) every crate root must keep `#![forbid(unsafe_code)]` — or
    // carry a SAFETY comment explaining the relaxation.
    if file.rel_path.ends_with("src/lib.rs") {
        let has_forbid = toks.windows(7).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
                && w[6].text == ")"
        });
        let has_safety_note = file
            .lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:"));
        if !has_forbid && !has_safety_note {
            out.push(finding(
                file,
                "C1",
                1,
                "crate root lacks `#![forbid(unsafe_code)]`: keep it, or relax it together \
                 with a `// SAFETY:` comment stating the crate-level contract"
                    .to_string(),
            ));
        }
    }

    // Marker comments reach through their own continuation lines: a
    // wrapped `// ORDERING: …` paragraph counts from its last line.
    let comments = &file.lexed.comments;
    let mut marker_spans: Vec<(u32, u32)> = Vec::new();
    for (ci, c) in comments.iter().enumerate() {
        if !(c.text.contains("SAFETY:") || c.text.contains("ORDERING:")) {
            continue;
        }
        let mut end = c.end_line;
        for next in &comments[ci + 1..] {
            if next.line == end + 1 {
                end = next.end_line;
            } else {
                break;
            }
        }
        marker_spans.push((c.line, end));
    }

    // (b)/(c) token-level obligations. The `unsafe_code` ident inside
    // `forbid(unsafe_code)` is the contract itself and never matches
    // here (it is a distinct identifier from the `unsafe` keyword).
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_atomic_use = (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len())
            || ATOMIC_OPS.contains(&t.text.as_str())
            || (t.text == "Ordering"
                && toks.get(i + 1).is_some_and(|x| x.text == ":")
                && toks.get(i + 2).is_some_and(|x| x.text == ":")
                && toks
                    .get(i + 3)
                    .is_some_and(|x| MEMORY_ORDERINGS.contains(&x.text.as_str())));
        let obligation = if t.text == "unsafe" {
            Some("SAFETY:")
        } else if is_atomic_use {
            Some("ORDERING:")
        } else {
            None
        };
        let Some(marker) = obligation else { continue };
        let near = marker_spans
            .iter()
            .any(|&(lo, hi)| lo <= t.line && hi + 3 >= t.line);
        if !near {
            out.push(finding(
                file,
                "C1",
                t.line,
                format!(
                    "`{}` without an adjacent `// {marker}` comment (within 3 lines above): \
                     write down the invariant/ordering argument it relies on",
                    t.text
                ),
            ));
        }
    }
}

/// C2 — CAS retry loops must carry a termination argument. A
/// `compare_exchange` that loses can spin forever unless something
/// bounds the retries (a monotone lattice, a claimant count, a
/// single-writer guarantee); the argument has to be written down in an
/// adjacent `// RETRY:` comment, C1-style.
fn rule_c2(file: &SourceFile, out: &mut Vec<Finding>) {
    const CAS_OPS: &[&str] = &["compare_exchange", "compare_exchange_weak", "fetch_update"];

    // Marker comments reach through their own continuation lines, same
    // adjacency contract as C1's SAFETY/ORDERING markers.
    let comments = &file.lexed.comments;
    let mut marker_spans: Vec<(u32, u32)> = Vec::new();
    for (ci, c) in comments.iter().enumerate() {
        if !c.text.contains("RETRY:") {
            continue;
        }
        let mut end = c.end_line;
        for next in &comments[ci + 1..] {
            if next.line == end + 1 {
                end = next.end_line;
            } else {
                break;
            }
        }
        marker_spans.push((c.line, end));
    }

    for t in idents(&file.lexed.tokens) {
        if !CAS_OPS.contains(&t.text.as_str()) {
            continue;
        }
        let near = marker_spans
            .iter()
            .any(|&(lo, hi)| lo <= t.line && hi + 3 >= t.line);
        if !near {
            out.push(finding(
                file,
                "C2",
                t.line,
                format!(
                    "`{}` without an adjacent `// RETRY:` comment (within 3 lines above): \
                     write down why the retry loop terminates (monotone state, bounded \
                     claimants, single writer, …)",
                    t.text
                ),
            ));
        }
    }
}

fn idents(tokens: &[Token]) -> impl Iterator<Item = &Token> {
    tokens.iter().filter(|t| t.kind == TokenKind::Ident)
}
