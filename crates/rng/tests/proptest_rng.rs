//! Property-based tests for generators and samplers.

use bib_rng::dist::{AliasTable, BinomialSampler, Distribution, GeometricSampler, Zipf};
use bib_rng::{Pcg32, Rng64, RngExt, SeedSequence, SplitMix64, Xoshiro256PlusPlus};
use proptest::prelude::*;

proptest! {
    /// range_u64 stays in range for arbitrary n and seeds.
    #[test]
    fn range_u64_in_bounds(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.range_u64(n) < n);
        }
    }

    /// next_f64 stays in [0, 1) for all generators.
    #[test]
    fn f64_unit_interval(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut c = Pcg32::new(seed, seed ^ 0x5bd1e995);
        for _ in 0..16 {
            for x in [a.next_f64(), b.next_f64(), c.next_f64()] {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    /// Generators are pure state machines: clone ⇒ identical streams.
    #[test]
    fn clone_determinism(seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut b = a;
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..128) {
        let mut rng = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// sample_distinct returns exactly k distinct in-range values.
    #[test]
    fn sample_distinct_contract(seed in any::<u64>(), n in 1usize..100, k_frac in 0.0f64..=1.0) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = SplitMix64::new(seed);
        let s = rng.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        prop_assert_eq!(t.len(), k);
        prop_assert!(s.iter().all(|&x| x < n));
    }

    /// SeedSequence children never collide with each other or the parent
    /// on small label sets (collision = broken derivation).
    #[test]
    fn seed_children_distinct(master in any::<u64>(), labels in prop::collection::btree_set(0u64..10_000, 2..50)) {
        let root = SeedSequence::new(master);
        let mut seeds: Vec<u64> = labels.iter().map(|&l| root.child(l).seed()).collect();
        seeds.push(root.seed());
        let before = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), before);
    }

    /// Geometric samples are ≥ 1 and have plausible magnitude.
    #[test]
    fn geometric_support(seed in any::<u64>(), p in 0.01f64..=1.0) {
        let d = GeometricSampler::new(p);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let k = d.sample(&mut rng);
            prop_assert!(k >= 1);
            // 64-sigma-ish cap: Pr[k > 50/p] < (1-p)^{50/p} ≈ e^{-50}.
            prop_assert!((k as f64) <= 60.0 / p + 10.0);
        }
    }

    /// Binomial samples stay within the support for arbitrary (n, p).
    #[test]
    fn binomial_support(seed in any::<u64>(), n in 0u64..5000, p in 0.0f64..=1.0) {
        let d = BinomialSampler::new(n, p);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert!(d.sample(&mut rng) <= n);
        }
    }

    /// Alias tables: sampling respects zero weights and support bounds;
    /// pmf is a probability vector.
    #[test]
    fn alias_table_contract(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..40),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights);
        let total_pmf: f64 = (0..t.len()).map(|i| t.pmf(i)).sum();
        prop_assert!((total_pmf - 1.0).abs() < 1e-9);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let s = t.sample(&mut rng);
            prop_assert!(s < weights.len());
            prop_assert!(weights[s] > 0.0, "sampled zero-weight cell {s}");
        }
    }

    /// Zipf pmf is monotone non-increasing and sampling is in-support.
    #[test]
    fn zipf_contract(seed in any::<u64>(), n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        for k in 1..n {
            prop_assert!(z.pmf(k) >= z.pmf(k + 1) - 1e-12);
        }
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Lemire range sampling is *unbiased*: for tiny ranges, compare the
    /// exact per-value counts of a fixed generator against the naive
    /// (biased) modulo method to ensure we did not implement modulo.
    #[test]
    fn lemire_differs_from_modulo_only_in_distribution(seed in any::<u64>(), n in 1u64..32) {
        // Functional sanity rather than statistics: the method must use
        // the high-bits product, so for n = 1 it returns 0 regardless of
        // the word, and for n = 2 it returns the top bit.
        let mut rng = SplitMix64::new(seed);
        prop_assert_eq!(rng.range_u64(1), 0);
        let mut rng2 = SplitMix64::new(seed);
        let word = rng2.next_u64();
        let mut rng3 = SplitMix64::new(seed);
        if n == 2 {
            prop_assert_eq!(rng3.range_u64(2), word >> 63);
        }
    }
}

proptest! {
    /// Mode-centred inversion at the p → 0 edge with n up to 10⁹: the
    /// sample mean must sit within normal-theory bounds of n·p and the
    /// sample variance within a generous window of n·p·(1−p). The mean
    /// is kept moderate so the mode-centred path (flipped mean > 32) is
    /// the one exercised while draws stay O(√mean).
    #[test]
    fn binomial_mode_inversion_small_p_edge(
        seed in any::<u64>(),
        n in 1_000_000u64..=1_000_000_000,
        mean in 40.0f64..400.0,
    ) {
        let p = mean / n as f64; // p as small as 4e-8
        let d = BinomialSampler::new(n, p);
        let mut rng = SplitMix64::new(seed);
        let reps = 300u64;
        let xs: Vec<f64> = (0..reps).map(|_| d.sample(&mut rng) as f64).collect();
        let m = xs.iter().sum::<f64>() / reps as f64;
        let var_true = n as f64 * p * (1.0 - p);
        let sd_of_mean = (var_true / reps as f64).sqrt();
        prop_assert!((m - mean).abs() < 5.0 * sd_of_mean,
            "n={n} p={p}: mean {m} vs {mean} (tol {})", 5.0 * sd_of_mean);
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64;
        // Sample variance of 300 draws has ~8% relative sd; allow 5σ.
        prop_assert!(v > 0.55 * var_true && v < 1.6 * var_true,
            "n={n} p={p}: var {v} vs {var_true}");
        prop_assert!(xs.iter().all(|&x| x >= 0.0 && x <= n as f64));
    }

    /// The mirrored p → 1 edge: draws concentrate at n − O(mean of the
    /// flipped tail), and the flip keeps mean and variance exact.
    #[test]
    fn binomial_mode_inversion_large_p_edge(
        seed in any::<u64>(),
        n in 1_000_000u64..=1_000_000_000,
        flipped_mean in 40.0f64..400.0,
    ) {
        let p = 1.0 - flipped_mean / n as f64;
        let d = BinomialSampler::new(n, p);
        let mut rng = SplitMix64::new(seed);
        let reps = 300u64;
        let xs: Vec<f64> = (0..reps).map(|_| (n - d.sample(&mut rng)) as f64).collect();
        let m = xs.iter().sum::<f64>() / reps as f64;
        let var_true = n as f64 * p * (1.0 - p);
        let sd_of_mean = (var_true / reps as f64).sqrt();
        prop_assert!((m - flipped_mean).abs() < 5.0 * sd_of_mean,
            "n={n} p={p}: flipped mean {m} vs {flipped_mean}");
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64;
        prop_assert!(v > 0.55 * var_true && v < 1.6 * var_true,
            "n={n} p={p}: var {v} vs {var_true}");
    }

    /// The two exact inversion paths sample the *same* distribution on
    /// the from-zero path's domain (`n·q ≤ 32`, where `(1−q)^n` cannot
    /// underflow — beyond it only the mode-centred path is valid, which
    /// is exactly how `sample` routes): their ensemble means must agree
    /// within two-sample normal bounds.
    #[test]
    fn binomial_inversion_paths_agree(
        seed in any::<u64>(),
        n in 100u64..2000,
        mean in 2.0f64..=32.0,
    ) {
        let q = (mean / n as f64).min(0.45);
        let reps = 400u64;
        let mut rng = SplitMix64::new(seed);
        let from_zero: f64 = (0..reps)
            .map(|_| BinomialSampler::sample_inversion(n, q, &mut rng) as f64)
            .sum::<f64>() / reps as f64;
        let from_mode: f64 = (0..reps)
            .map(|_| BinomialSampler::sample_mode_inversion(n, q, &mut rng) as f64)
            .sum::<f64>() / reps as f64;
        let sd_of_diff = (2.0 * n as f64 * q * (1.0 - q) / reps as f64).sqrt();
        prop_assert!((from_zero - from_mode).abs() < 5.0 * sd_of_diff,
            "n={n} q={q}: from-zero {from_zero} vs mode-centred {from_mode}");
    }

    /// Degenerate tails at huge n: a vanishing p yields a near-Poisson
    /// count that must stay tiny, and the sampler must not loop or
    /// overflow anywhere on the support.
    #[test]
    fn binomial_vanishing_p_stays_poisson_sized(seed in any::<u64>()) {
        let n = 1_000_000_000u64;
        let d = BinomialSampler::new(n, 3e-9); // mean 3
        let mut rng = SplitMix64::new(seed);
        let mut total = 0u64;
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x <= 60, "mean-3 draw produced {x}");
            total += x;
        }
        // 200 draws of mean 3: total within ±6σ = ±147.
        prop_assert!((total as i64 - 600).unsigned_abs() < 150, "total {total}");
    }
}
