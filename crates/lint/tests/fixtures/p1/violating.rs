//! P1 violating fixture: bare unwrap and empty expect in library code.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn tail(xs: &[u32]) -> u32 {
    *xs.last().expect("")
}
