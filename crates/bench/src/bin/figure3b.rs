//! **E3 — Figure 3(b)**: average final quadratic potential vs `m`.
//!
//! The paper plots the average (over 100 simulations) of
//! `Ψ(L^m) = Σᵢ (Lᵢ − m/n)²`, scaled by 1/5000 on the y-axis. Expected
//! shape: adaptive's curve is *flat* in m (it converges to an O(n) value
//! — guaranteed by Lemma 3.4 / Corollary 3.5), while threshold's keeps
//! growing with m.
//!
//! ```text
//! cargo run --release -p bib-bench --bin figure3b [-- --quick --csv]
//! ```

use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(10_000usize, 1_000usize);
    let reps = args.reps_or(100, 10);
    let ms: Vec<u64> = (2..=10).map(|k| k as u64 * 10 * n as u64).collect();

    println!("# Figure 3(b): average final quadratic potential, n = {n}, {reps} replicates\n");
    let mut table = Table::new(vec![
        "m_e4",
        "adaptive_psi",
        "adaptive_psi/5000",
        "threshold_psi",
        "threshold_psi/5000",
        "psi_ratio_thr/ada",
    ]);

    for &m in &ms {
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let spec = args.replicate_spec(reps);
        let ada = replicate_outcomes(&Adaptive::paper(), &cfg, &spec);
        let thr = replicate_outcomes(&Threshold, &cfg, &spec);
        let sa = bib_parallel::replicate::summarize_metric(&ada, |o| o.psi());
        let st = bib_parallel::replicate::summarize_metric(&thr, |o| o.psi());
        table.row(vec![
            f(m as f64 * 1e-4),
            f(sa.mean),
            f(sa.mean / 5000.0),
            f(st.mean),
            f(st.mean / 5000.0),
            f(st.mean / sa.mean),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shape: adaptive_psi flat in m (O(n)); threshold_psi increasing in m.");
}
