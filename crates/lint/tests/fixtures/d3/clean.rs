//! D3 clean fixture: every stream flows from the seed path types.
use bib_rng::SeedSequence;

pub fn roll(master: u64) -> u64 {
    let mut rng = SeedSequence::new(master).child(0).rng();
    rng.next_u64()
}
