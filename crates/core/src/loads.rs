//! The lazy load vector: histogram-first outcomes.
//!
//! Every statistic the paper tracks — max load, gap, Ψ, Φ, overloads —
//! is a function of the *occupancy histogram* `counts[ℓ]`, not of which
//! bin carries which load. The statistical license is exchangeability:
//! the faithful processes are invariant under bin relabelling, so a
//! uniformly seeded assignment of occupancy classes to bin identities
//! has the correct joint law. [`Loads`] exploits that by carrying the
//! histogram (plus a reconstruction seed) as the primary result and
//! materializing the dense per-bin vector only when a caller actually
//! demands bin identities — through [`Loads::as_slice`], the `Deref`
//! impl, indexing, or iteration. The first materialization is cached,
//! so repeated access costs one reconstruction, and the reconstruction
//! itself is a pure function of the stored seed: *when* (or whether)
//! it happens never changes the resulting vector.
//!
//! Outcomes born from a dense driver (the faithful per-ball loop, the
//! level-batched engine, the weighted family whose per-bin weights pin
//! bin identities) wrap their vector with [`Loads::from_vec`]; the
//! histogram view is then derived (and cached) on demand, so the
//! `O(#distinct loads)` statistics are equally available on both kinds.

use crate::histogram::{sharded_shuffled_loads, OccupancyHistogram, SHARD_MIN_BINS};
use bib_rng::SplitMix64;
use std::sync::OnceLock;

/// A load vector that may exist only as its occupancy histogram.
///
/// Exactly one of two birth states:
///
/// * **dense** ([`Loads::from_vec`]) — the per-bin vector is present
///   from the start; the histogram view is derived lazily.
/// * **virtual** ([`Loads::from_histogram`]) — only the histogram and
///   a reconstruction seed are stored (`O(#distinct loads)` memory);
///   the dense vector is reconstructed lazily by the uniform seeded
///   assignment [`OccupancyHistogram::shuffled_loads`] (sharded over
///   threads above [`SHARD_MIN_BINS`] bins) and cached.
///
/// Both lazy directions go through [`OnceLock`], so a `Loads` can be
/// shared across the replication worker threads.
#[derive(Clone)]
pub struct Loads {
    n: usize,
    /// The histogram + seed a virtual value reconstructs from. `None`
    /// for dense-born values (their histogram lives in `hist`).
    recon: Option<(OccupancyHistogram, u64)>,
    dense: OnceLock<Vec<u32>>,
    /// Cache for the histogram of a dense-born value.
    hist: OnceLock<OccupancyHistogram>,
}

impl Loads {
    /// Wraps an already-materialized per-bin vector.
    pub fn from_vec(loads: Vec<u32>) -> Self {
        let n = loads.len();
        Self {
            n,
            recon: None,
            dense: OnceLock::from(loads),
            hist: OnceLock::new(),
        }
    }

    /// A virtual load vector: the histogram is the result; `seed`
    /// determines the (lazy, cached) dense reconstruction.
    pub fn from_histogram(hist: OccupancyHistogram, seed: u64) -> Self {
        Self {
            n: hist.n() as usize,
            recon: Some((hist, seed)),
            dense: OnceLock::new(),
            hist: OnceLock::new(),
        }
    }

    /// Number of bins — never materializes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no bins — never materializes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the dense per-bin vector has been built (at birth or by
    /// a later accessor). The `--no-loads` sweeps assert this stays
    /// `false`.
    pub fn is_materialized(&self) -> bool {
        self.dense.get().is_some()
    }

    /// The occupancy histogram view — `O(#distinct loads)` for virtual
    /// values, one cached `O(n)` counting pass for dense-born ones.
    ///
    /// Panics on an empty vector (a histogram needs ≥ 1 bin).
    pub fn histogram(&self) -> &OccupancyHistogram {
        match &self.recon {
            Some((h, _)) => h,
            None => self.hist.get_or_init(|| {
                OccupancyHistogram::from_loads(
                    self.dense.get().expect("dense-born Loads missing vector"),
                )
            }),
        }
    }

    /// The dense per-bin vector, reconstructing (and caching) it on
    /// first demand. Reconstruction is deterministic in the stored
    /// seed: calling this earlier, later, twice, or from a clone always
    /// yields the same vector.
    pub fn as_slice(&self) -> &[u32] {
        self.dense.get_or_init(|| {
            let (hist, seed) = self
                .recon
                .as_ref()
                .expect("virtual Loads missing reconstruction state");
            let mut rng = SplitMix64::new(*seed);
            if hist.n() >= SHARD_MIN_BINS {
                sharded_shuffled_loads(hist, &mut rng)
            } else {
                hist.shuffled_loads(&mut rng)
            }
        })
    }

    /// An owned copy of the dense vector (materializes).
    pub fn to_vec(&self) -> Vec<u32> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for Loads {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl From<Vec<u32>> for Loads {
    fn from(loads: Vec<u32>) -> Self {
        Self::from_vec(loads)
    }
}

impl<'a> IntoIterator for &'a Loads {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Loads {
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n {
            return false;
        }
        // Two virtual values with identical reconstruction state are
        // equal without materializing; anything else compares the
        // (cached) dense vectors.
        match (&self.recon, &other.recon) {
            (Some(a), Some(b)) if a == b => true,
            _ => self.as_slice() == other.as_slice(),
        }
    }
}

impl PartialEq<Vec<u32>> for Loads {
    fn eq(&self, other: &Vec<u32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Loads> for Vec<u32> {
    fn eq(&self, other: &Loads) -> bool {
        other == self
    }
}

impl PartialEq<&[u32]> for Loads {
    fn eq(&self, other: &&[u32]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for Loads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dense.get() {
            Some(v) => write!(f, "Loads({v:?})"),
            None => {
                let (h, seed) = self.recon.as_ref().expect("virtual Loads missing state");
                write!(
                    f,
                    "Loads(virtual, n={}, span=[{}, {}], seed={seed})",
                    self.n,
                    h.min_load(),
                    h.max_load()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hist() -> OccupancyHistogram {
        // 6 bins: loads {0:1, 1:2, 2:3}.
        OccupancyHistogram::from_loads(&[0, 1, 1, 2, 2, 2])
    }

    #[test]
    fn dense_born_round_trip() {
        let l = Loads::from_vec(vec![3, 1, 2]);
        assert!(l.is_materialized());
        assert_eq!(l.len(), 3);
        assert_eq!(l[0], 3);
        assert_eq!(l.iter().sum::<u32>(), 6);
        let h = l.histogram();
        assert_eq!(h.n(), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.total_balls(), 6);
    }

    #[test]
    fn virtual_stays_virtual_until_asked() {
        let l = Loads::from_histogram(small_hist(), 7);
        assert!(!l.is_materialized());
        assert_eq!(l.len(), 6);
        // Histogram queries never materialize.
        assert_eq!(l.histogram().max_load(), 2);
        assert_eq!(l.histogram().total_balls(), 8);
        assert!(!l.is_materialized());
        // Slice access does.
        let sum: u32 = l.as_slice().iter().sum();
        assert_eq!(sum, 8);
        assert!(l.is_materialized());
    }

    #[test]
    fn materialize_twice_is_identity() {
        let l = Loads::from_histogram(small_hist(), 99);
        let first = l.to_vec();
        let second = l.to_vec();
        assert_eq!(first, second);
        // A clone taken before materialization reconstructs the same
        // vector from the stored seed.
        let fresh = Loads::from_histogram(small_hist(), 99);
        assert_eq!(fresh.to_vec(), first);
        // The reconstruction preserves the histogram.
        let mut sorted = first;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn equality_across_representations() {
        let a = Loads::from_histogram(small_hist(), 5);
        let b = Loads::from_histogram(small_hist(), 5);
        // Equal without materializing: same histogram, same seed.
        assert_eq!(a, b);
        assert!(!a.is_materialized() && !b.is_materialized());
        // Dense vs virtual compares contents.
        let dense = Loads::from_vec(a.to_vec());
        assert_eq!(dense, b);
        assert_eq!(dense, b.to_vec());
        // Different seeds almost surely differ as vectors but share the
        // histogram (6 bins, 3 classes — collision is possible, so only
        // check the histogram claim).
        let c = Loads::from_histogram(small_hist(), 6);
        assert_eq!(c.histogram(), b.histogram());
    }

    #[test]
    fn clone_of_materialized_keeps_vector() {
        let l = Loads::from_histogram(small_hist(), 13);
        let v = l.to_vec();
        let cl = l.clone();
        assert!(cl.is_materialized());
        assert_eq!(cl.as_slice(), &v[..]);
    }
}
