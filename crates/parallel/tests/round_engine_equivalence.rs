//! Distributional equivalence of the round-occupancy engine.
//!
//! The claim (see `bib_parallel::protocols`): `Engine::Histogram`
//! induces the same distribution as `Engine::Faithful` on the outcome
//! marginals of the parallel round family — final loads, rounds,
//! messages — for `collision`, `bounded-load` and `parallel-greedy`,
//! exactly where the engine takes its exact paths and up to the
//! documented moment-matched approximations elsewhere. Checked four
//! ways:
//!
//! * brute-force enumeration — tiny collision cases are enumerated
//!   exactly (every contact assignment per round, stall counter and
//!   fallback included) and both engines' samples are
//!   goodness-of-fit-tested against the enumerated law; bounded-load
//!   and single-round parallel-greedy have closed forms;
//! * two-sample chi-square tests between faithful and round-occupancy
//!   replicate ensembles on the max-load, rounds and messages
//!   marginals, at sizes that exercise the approximate paths
//!   (occupancy-cell walk, hypergeometric chains, placed-ball draw);
//! * sure invariants — mass conservation, the bounded-load capacity
//!   bound, exact fills, round-indexed stage traces — across sizes;
//! * `Engine::Auto` resolution: deterministic and stream-identical to
//!   the concrete engine it resolves to.

use bib_analysis::chisq::{chi_square_gof, chi_square_sf};
use bib_core::prelude::*;
use bib_core::protocol::StageTrace;
use bib_core::run::{run_protocol, run_with_observer};
use bib_parallel::protocols::{BoundedLoad, Collision, ParallelGreedy};
use std::collections::BTreeMap;

/// Two-sample Pearson chi-square on a pair of histograms with pooling
/// of sparse cells; returns the p-value of "same distribution".
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    if cells.len() < 2 {
        return 1.0;
    }
    let mut stat = 0.0;
    for &(x, y) in &cells {
        let tot = x + y;
        let ex = tot * na / (na + nb);
        let ey = tot * nb / (na + nb);
        stat += (x - ex) * (x - ex) / ex + (y - ey) * (y - ey) / ey;
    }
    chi_square_sf((cells.len() - 1) as u64, stat)
}

/// Histograms a per-outcome statistic over replicate ensembles of the
/// faithful and round-occupancy engines.
fn engine_histograms<P, F>(
    proto: &P,
    n: usize,
    m: u64,
    reps: u64,
    cells: usize,
    stat: F,
) -> (Vec<u64>, Vec<u64>)
where
    P: Protocol,
    F: Fn(&Outcome) -> usize,
{
    let mut hists = Vec::new();
    for engine in [Engine::Faithful, Engine::Histogram] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let mut h = vec![0u64; cells];
        for rep in 0..reps {
            // Distinct seed spaces per engine: the comparison is
            // distributional, not stream-coupled.
            let seed = rep + engine as u64 * 1_000_000;
            let out = run_protocol(proto, &cfg, seed);
            let idx = stat(&out).min(cells - 1);
            h[idx] += 1;
        }
        hists.push(h);
    }
    let b = hists.pop().unwrap();
    let a = hists.pop().unwrap();
    (a, b)
}

const ALPHA: f64 = 1e-4;

#[test]
fn collision_marginals_match() {
    let (n, m, reps) = (2048usize, 2048u64, 400u64);
    let proto = Collision::new(1);
    let (a, b) = engine_histograms(&proto, n, m, reps, 12, |o| o.max_load() as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > ALPHA,
        "collision max-load: p = {p:.2e} ({a:?} vs {b:?})"
    );
    let (a, b) = engine_histograms(&proto, n, m, reps, 16, |o| o.rounds() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "collision rounds: p = {p:.2e} ({a:?} vs {b:?})");
    // Messages live in [2m, ~4m]; bucket the excess over the floor.
    let (a, b) = engine_histograms(&proto, n, m, reps, 40, |o| {
        ((o.messages().saturating_sub(2 * m)) / (m / 24).max(1)) as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(
        p > ALPHA,
        "collision messages: p = {p:.2e} ({a:?} vs {b:?})"
    );
}

#[test]
fn collision_larger_threshold_marginals_match() {
    // c = 2 exercises multi-level promotes per round.
    let (n, m, reps) = (1024usize, 1024u64, 300u64);
    let proto = Collision::new(2);
    let (a, b) = engine_histograms(&proto, n, m, reps, 12, |o| o.max_load() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "collision(2) max-load: p = {p:.2e}");
    let (a, b) = engine_histograms(&proto, n, m, reps, 12, |o| o.rounds() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "collision(2) rounds: p = {p:.2e}");
}

#[test]
fn bounded_load_marginals_match() {
    let (n, m, reps) = (1024usize, 1024u64, 400u64);
    let proto = BoundedLoad::new(2);
    let (a, b) = engine_histograms(&proto, n, m, reps, 12, |o| o.rounds() as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > ALPHA,
        "bounded-load rounds: p = {p:.2e} ({a:?} vs {b:?})"
    );
    let (a, b) = engine_histograms(&proto, n, m, reps, 40, |o| {
        ((o.messages().saturating_sub(m)) / (m / 12).max(1)) as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(
        p > ALPHA,
        "bounded-load messages: p = {p:.2e} ({a:?} vs {b:?})"
    );
    // Max load is ≤ cap surely (and almost surely = cap at m = n);
    // compare the marginal anyway — a degenerate pair pools to p = 1.
    let (a, b) = engine_histograms(&proto, n, m, reps, 4, |o| o.max_load() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "bounded-load max-load: p = {p:.2e}");
}

#[test]
fn parallel_greedy_marginals_match() {
    for rounds in [2u32, 4] {
        let (n, m, reps) = (1024usize, 1024u64, 400u64);
        let proto = ParallelGreedy::new(2, rounds, 1);
        let (a, b) = engine_histograms(&proto, n, m, reps, 10, |o| o.max_load() as usize);
        let p = two_sample_p(&a, &b);
        assert!(
            p > ALPHA,
            "pg(r={rounds}) max-load: p = {p:.2e} ({a:?} vs {b:?})"
        );
        let (a, b) = engine_histograms(&proto, n, m, reps, 40, |o| {
            ((o.messages().saturating_sub(m)) / (m / 16).max(1)) as usize
        });
        let p = two_sample_p(&a, &b);
        assert!(
            p > ALPHA,
            "pg(r={rounds}) messages: p = {p:.2e} ({a:?} vs {b:?})"
        );
        let (a, b) = engine_histograms(&proto, n, m, reps, 8, |o| o.rounds() as usize);
        let p = two_sample_p(&a, &b);
        assert!(p > ALPHA, "pg(r={rounds}) rounds: p = {p:.2e}");
    }
}

// ---------------------------------------------------------------------
// Brute-force enumeration of tiny collision runs.
// ---------------------------------------------------------------------

/// Exact distribution over `(sorted final loads, rounds)` of the
/// collision protocol, by forward propagation over every per-round
/// contact assignment (`n^u` branches, uniform), stall counter and
/// one-choice fallback included. Mass still live after `max_rounds`
/// rounds is returned separately (the caller pools it into the
/// chi-square overflow cell).
fn collision_brute(
    n: usize,
    m: u32,
    c: u32,
    max_rounds: u32,
) -> (BTreeMap<(Vec<u32>, u32), f64>, f64) {
    const STALL_LIMIT: u32 = 8; // Collision::STALL_LIMIT
    type Live = BTreeMap<(Vec<u32>, u32, u32), f64>; // (loads, unplaced, stalled)
    let mut live: Live = BTreeMap::new();
    live.insert((vec![0; n], m, 0), 1.0);
    let mut terminal: BTreeMap<(Vec<u32>, u32), f64> = BTreeMap::new();
    let mut rounds = 0u32;
    while !live.is_empty() && rounds < max_rounds {
        rounds += 1;
        let mut next: Live = BTreeMap::new();
        for ((loads, unplaced, stalled), prob) in live {
            let u = unplaced as usize;
            let branches = (n as u64).pow(u as u32);
            let p_branch = prob / branches as f64;
            for code in 0..branches {
                // Decode the contact assignment.
                let mut counts = vec![0u32; n];
                let mut x = code;
                for _ in 0..u {
                    counts[(x % n as u64) as usize] += 1;
                    x /= n as u64;
                }
                let mut new_loads = loads.clone();
                let mut placed = 0u32;
                for (bin, &cnt) in counts.iter().enumerate() {
                    if cnt > 0 && cnt <= c {
                        new_loads[bin] += cnt;
                        placed += cnt;
                    }
                }
                let left = unplaced - placed;
                if left == 0 {
                    let mut key = new_loads;
                    key.sort_unstable();
                    *terminal.entry((key, rounds)).or_insert(0.0) += p_branch;
                    continue;
                }
                let new_stalled = if placed == 0 { stalled + 1 } else { 0 };
                if new_stalled >= STALL_LIMIT {
                    // One-choice fallback: one extra round, every
                    // remaining assignment accepted unconditionally.
                    let fb = (n as u64).pow(left);
                    let p_fb = p_branch / fb as f64;
                    for fcode in 0..fb {
                        let mut fl = new_loads.clone();
                        let mut y = fcode;
                        for _ in 0..left {
                            fl[(y % n as u64) as usize] += 1;
                            y /= n as u64;
                        }
                        fl.sort_unstable();
                        *terminal.entry((fl, rounds + 1)).or_insert(0.0) += p_fb;
                    }
                    continue;
                }
                let mut key = new_loads;
                key.sort_unstable();
                *next.entry((key, left, new_stalled)).or_insert(0.0) += p_branch;
            }
        }
        live = next;
    }
    let leftover: f64 = live.values().sum();
    (terminal, leftover)
}

/// Samples `reps` runs of `proto` under `engine` and GOF-tests the
/// `(sorted loads, rounds)` joint against the enumerated law.
fn gof_against_brute(n: usize, m: u32, c: u32, engine: Engine, reps: u64) {
    let (dist, leftover) = collision_brute(n, m, c, 24);
    assert!(leftover < 1e-9, "enumeration truncated too much mass");
    let mut keys: Vec<&(Vec<u32>, u32)> = dist.keys().collect();
    keys.sort();
    let index: BTreeMap<_, _> = keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    let probs: Vec<f64> = keys.iter().map(|k| dist[*k]).collect();
    let mut observed = vec![0u64; keys.len()];
    let mut overflow = 0u64;
    let cfg = RunConfig::new(n, m as u64).with_engine(engine);
    let proto = Collision::new(c);
    for rep in 0..reps {
        let out = run_protocol(&proto, &cfg, rep);
        let mut loads = out.loads.to_vec();
        loads.sort_unstable();
        match index.get(&(loads, out.rounds())) {
            Some(&i) => observed[i] += 1,
            None => overflow += 1,
        }
    }
    let gof = chi_square_gof(&observed, &probs, overflow, 5.0);
    assert!(
        gof.p_value > ALPHA,
        "{engine} vs brute force (n={n}, m={m}, c={c}): p = {:.2e}, chi2 = {:.1}/{}",
        gof.p_value,
        gof.statistic,
        gof.dof
    );
}

#[test]
fn collision_small_cases_match_brute_force() {
    // Exact-path regime (every profile walk, class pick and
    // hypergeometric is exact below the thresholds): the engine must
    // reproduce the enumerated law, not just approximate it. The
    // faithful engine runs through the same test to validate the
    // enumerator itself.
    for engine in [Engine::Histogram, Engine::Faithful] {
        gof_against_brute(3, 2, 1, engine, 20_000);
        gof_against_brute(4, 3, 2, engine, 20_000);
    }
}

#[test]
fn bounded_load_small_case_matches_closed_form() {
    // n = 2, cap = 1, m = 2: round 1 places both balls iff they pick
    // distinct bins (probability 1/2). Otherwise one ball retries with
    // k = 2 contacts against one open bin of two, succeeding with
    // probability 1 − (1/2)² = 3/4 per round. So
    //   P(rounds = 1) = 1/2,  P(rounds = r ≥ 2) = (1/2)·(3/4)·(1/4)^{r−2},
    // and the final loads are [1, 1] surely.
    let cells = 12usize;
    let mut probs = vec![0.0f64; cells];
    probs[1] = 0.5;
    for (r, p) in probs.iter_mut().enumerate().skip(2) {
        *p = 0.5 * 0.75 * 0.25f64.powi(r as i32 - 2);
    }
    for engine in [Engine::Histogram, Engine::Faithful] {
        let cfg = RunConfig::new(2, 2).with_engine(engine);
        let proto = BoundedLoad::new(1);
        let mut observed = vec![0u64; cells];
        let mut overflow = 0u64;
        for rep in 0..20_000u64 {
            let out = run_protocol(&proto, &cfg, rep);
            assert_eq!(out.loads, vec![1, 1], "loads must fill exactly");
            match out.rounds() {
                r if (r as usize) < cells => observed[r as usize] += 1,
                _ => overflow += 1,
            }
        }
        let gof = chi_square_gof(&observed, &probs, overflow, 5.0);
        assert!(
            gof.p_value > ALPHA,
            "{engine} bounded-load rounds vs closed form: p = {:.2e}",
            gof.p_value
        );
    }
}

#[test]
fn parallel_greedy_single_round_matches_enumeration() {
    // r = 1 is pure commitment: every ball lands uniformly (min over
    // all-equal loads = first candidate), so the sorted loads follow
    // the enumerated multinomial over n^m assignments. n = 3, m = 3:
    //   [1,1,1] w.p. 6/27, [0,1,2] w.p. 18/27, [0,0,3] w.p. 3/27.
    let probs = [6.0 / 27.0, 18.0 / 27.0, 3.0 / 27.0];
    for engine in [Engine::Histogram, Engine::Faithful] {
        let cfg = RunConfig::new(3, 3).with_engine(engine);
        let proto = ParallelGreedy::new(2, 1, 1);
        let mut observed = [0u64; 3];
        for rep in 0..20_000u64 {
            let out = run_protocol(&proto, &cfg, rep);
            assert_eq!(out.rounds(), 1);
            let mut loads = out.loads.to_vec();
            loads.sort_unstable();
            let idx = match loads.as_slice() {
                [1, 1, 1] => 0,
                [0, 1, 2] => 1,
                [0, 0, 3] => 2,
                other => panic!("impossible loads {other:?}"),
            };
            observed[idx] += 1;
        }
        let gof = chi_square_gof(&observed, &probs, 0, 5.0);
        assert!(
            gof.p_value > ALPHA,
            "{engine} pg(r=1) vs enumeration: p = {:.2e}",
            gof.p_value
        );
    }
}

// ---------------------------------------------------------------------
// Sure invariants and plumbing.
// ---------------------------------------------------------------------

#[test]
fn engine_invariants_across_sizes() {
    for (n, m) in [(1usize, 3u64), (2, 2), (8, 8), (100, 100), (5000, 5000)] {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        let out = run_protocol(&Collision::new(1), &cfg, n as u64);
        assert_eq!(out.scenario.label(), "parallel");
        assert!(out.rounds() >= 1);
        assert!(out.messages() >= m);
        let out = run_protocol(&ParallelGreedy::new(2, 3, 1), &cfg, n as u64);
        assert!(out.rounds() <= 3);
        if 2 * n as u64 >= m {
            let out = run_protocol(&BoundedLoad::new(2), &cfg, n as u64);
            assert!(out.max_load() <= 2, "cap violated: {}", out.max_load());
        }
    }
}

#[test]
fn engine_exact_fill_at_capacity() {
    // m = cap·n: every slot must fill, surely.
    let cfg = RunConfig::new(64, 128).with_engine(Engine::Histogram);
    let out = run_protocol(&BoundedLoad::new(2), &cfg, 9);
    assert_eq!(out.loads, vec![2u32; 64]);
}

#[test]
fn engine_zero_balls() {
    let cfg = RunConfig::new(8, 0).with_engine(Engine::Histogram);
    for out in [
        run_protocol(&Collision::new(1), &cfg, 1),
        run_protocol(&BoundedLoad::new(2), &cfg, 1),
        run_protocol(&ParallelGreedy::new(2, 3, 1), &cfg, 1),
    ] {
        assert_eq!(out.rounds(), 0);
        assert_eq!(out.messages(), 0);
        assert_eq!(out.max_load(), 0);
    }
}

#[test]
fn engine_stage_traces_fire_once_per_round() {
    let cfg = RunConfig::new(256, 256).with_engine(Engine::Histogram);
    for proto in [
        Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
        Box::new(BoundedLoad::new(2)),
        Box::new(ParallelGreedy::new(2, 4, 1)),
    ] {
        let mut trace = StageTrace::new();
        let out = run_with_observer(proto.as_ref(), &cfg, 11, &mut trace);
        assert_eq!(
            trace.stages,
            (1..=out.rounds() as u64).collect::<Vec<_>>(),
            "{}",
            out.protocol
        );
        // The last trace frame is the final state: its gap matches.
        assert_eq!(*trace.gaps.last().unwrap(), out.gap(), "{}", out.protocol);
    }
}

#[test]
fn auto_resolves_deterministically_and_matches_stream() {
    // Large: Auto → Histogram; small: Auto → Faithful. In both cases
    // the Auto run must be bit-identical to the resolved engine's run
    // on the same seed.
    for (n, m, resolved) in [
        (1 << 14, 1u64 << 14, Engine::Histogram),
        (256, 256, Engine::Faithful),
    ] {
        assert_eq!(Engine::auto_parallel(n, m), resolved);
        for proto in [
            Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
            Box::new(BoundedLoad::new(2)),
            Box::new(ParallelGreedy::new(2, 4, 1)),
        ] {
            let auto = RunConfig::new(n, m).with_engine(Engine::Auto);
            let conc = RunConfig::new(n, m).with_engine(resolved);
            let a = run_protocol(proto.as_ref(), &auto, 42);
            let b = run_protocol(proto.as_ref(), &conc, 42);
            assert_eq!(a, b, "Auto diverged for {}", a.protocol);
        }
    }
}

#[test]
fn alias_engines_share_their_concrete_path() {
    // Jump aliases the faithful rounds, LevelBatched the
    // round-occupancy engine — documented resolution, not silence.
    let n = 512usize;
    for proto in [
        Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
        Box::new(BoundedLoad::new(2)),
        Box::new(ParallelGreedy::new(2, 3, 1)),
    ] {
        for (alias, concrete) in [
            (Engine::Jump, Engine::Faithful),
            (Engine::LevelBatched, Engine::Histogram),
        ] {
            let a = run_protocol(
                proto.as_ref(),
                &RunConfig::new(n, n as u64).with_engine(alias),
                7,
            );
            let b = run_protocol(
                proto.as_ref(),
                &RunConfig::new(n, n as u64).with_engine(concrete),
                7,
            );
            assert_eq!(a, b, "{alias} should alias {concrete}");
        }
    }
}
