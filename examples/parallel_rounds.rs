//! Parallel allocation in rounds: the Lenzen–Wattenhofer-style
//! bounded-load protocol and the collision protocol.
//!
//! These are the related-work processes the paper's Table 1 situates
//! `adaptive` against: with synchronous rounds and O(n) messages, max
//! load 2 is achievable in ~log* n rounds [12]. Watch the round count
//! crawl as n grows by factors of 16.
//!
//! Since the scenario-layer unification the round protocols are plain
//! `Protocol`s returning the same `Outcome` record as the sequential
//! families — rounds and messages live in `outcome.scenario`, and the
//! runs below go through the ordinary seeded `run_protocol` entry
//! point. The runs use `Engine::Auto`, which resolves the larger sizes
//! to the round-occupancy engine: one multiplicity-profile draw per
//! round instead of one contact per unplaced ball, so the n = 2²⁰ rows
//! are near-instant.
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_rounds
//! ```

use balls_into_bins::core::prelude::*;
use balls_into_bins::parallel::protocols::{log_star, BoundedLoad, Collision};

fn main() {
    println!(
        "{:>10} {:>9} | {:>7} {:>10} {:>8} | {:>7} {:>10} {:>8}",
        "n", "log*(n)", "rounds", "msgs/ball", "max", "rounds", "msgs/ball", "max"
    );
    println!(
        "{:>10} {:>9} | {:^28} | {:^28}",
        "", "", "bounded-load (cap 2)", "collision (c = 1)"
    );
    for exp in [8u32, 12, 16, 20] {
        let n = 1usize << exp;
        let cfg = RunConfig::new(n, n as u64).with_engine(Engine::Auto);
        let bl = run_protocol(&BoundedLoad::new(2), &cfg, exp as u64);
        let co = run_protocol(&Collision::new(1), &cfg, exp as u64);
        assert_eq!(bl.scenario.label(), "parallel");
        println!(
            "{:>10} {:>9} | {:>7} {:>10.2} {:>8} | {:>7} {:>10.2} {:>8}",
            n,
            log_star(n as f64),
            bl.rounds(),
            bl.messages_per_ball(),
            bl.max_load(),
            co.rounds(),
            co.messages_per_ball(),
            co.max_load(),
        );
    }
    println!();
    println!("bounded-load: max load is *exactly* ≤ 2 by construction, rounds grow");
    println!("like log*; collision places everything in log log-ish rounds but its");
    println!("max load is whatever the collisions allow.");
}
