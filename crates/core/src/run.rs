//! Running protocols: seeding, single runs and sequential replication.
//!
//! Parallel replication lives in `bib-parallel`; these helpers define the
//! seed discipline both share, so a replicate's stream depends only on
//! `(master seed, protocol name, replicate index)` — never on scheduling.

use crate::protocol::{NullObserver, Observer, Outcome, Protocol, RunConfig};
use bib_rng::SeedSequence;

/// Runs a protocol once with a seed derived from `(seed, protocol name)`.
///
/// Generic over the protocol so concrete call sites monomorphize end to
/// end; boxed suites pass `&dyn DynProtocol` (which implements
/// [`Protocol`]) and pay one virtual hop per run.
pub fn run_protocol<P: Protocol + ?Sized>(protocol: &P, cfg: &RunConfig, seed: u64) -> Outcome {
    run_with_observer(protocol, cfg, seed, &mut NullObserver)
}

/// [`run_protocol`] with a custom observer.
pub fn run_with_observer<P, O>(protocol: &P, cfg: &RunConfig, seed: u64, obs: &mut O) -> Outcome
where
    P: Protocol + ?Sized,
    O: Observer + ?Sized,
{
    let mut rng = SeedSequence::new(seed).child_str(&protocol.name()).rng();
    let out = protocol.allocate(cfg, &mut rng, obs);
    out.validate();
    out
}

/// The seed for replicate `rep` of a protocol under master seed `seed` —
/// exposed so the parallel runner can reproduce the exact same streams.
pub fn replicate_seed(seed: u64, protocol_name: &str, rep: u64) -> u64 {
    SeedSequence::new(seed)
        .child_str(protocol_name)
        .child(rep)
        .seed()
}

/// Runs `reps` independent replicates sequentially; replicate `r` uses
/// [`replicate_seed`]`(seed, name, r)`.
pub fn run_replicates<P: Protocol + ?Sized>(
    protocol: &P,
    cfg: &RunConfig,
    seed: u64,
    reps: u64,
) -> Vec<Outcome> {
    (0..reps)
        .map(|rep| {
            let s = replicate_seed(seed, &protocol.name(), rep);
            let mut rng = SeedSequence::new(s).rng();
            let out = protocol.allocate(cfg, &mut rng, &mut NullObserver);
            out.validate();
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{Adaptive, Threshold};

    #[test]
    fn same_seed_same_outcome() {
        let cfg = RunConfig::new(32, 200);
        let a = run_protocol(&Adaptive::paper(), &cfg, 99);
        let b = run_protocol(&Adaptive::paper(), &cfg, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_protocols_get_different_streams() {
        // Same master seed must not feed identical randomness into
        // different protocols (the name is part of the derivation).
        let cfg = RunConfig::new(32, 200);
        let a = run_protocol(&Adaptive::paper(), &cfg, 99);
        let t = run_protocol(&Threshold, &cfg, 99);
        assert_ne!(a.loads, t.loads);
    }

    #[test]
    fn replicates_are_distinct_and_reproducible() {
        let cfg = RunConfig::new(16, 100);
        let runs1 = run_replicates(&Threshold, &cfg, 5, 4);
        let runs2 = run_replicates(&Threshold, &cfg, 5, 4);
        assert_eq!(runs1, runs2);
        // Replicates differ from each other (w.h.p. given 100 balls).
        assert_ne!(runs1[0].loads, runs1[1].loads);
        assert_eq!(runs1.len(), 4);
    }

    #[test]
    fn replicate_seed_is_schedule_independent() {
        // The seed formula must not depend on anything but the triple.
        let s1 = replicate_seed(7, "adaptive", 3);
        let s2 = replicate_seed(7, "adaptive", 3);
        assert_eq!(s1, s2);
        assert_ne!(replicate_seed(7, "adaptive", 4), s1);
        assert_ne!(replicate_seed(8, "adaptive", 3), s1);
        assert_ne!(replicate_seed(7, "threshold", 3), s1);
    }
}
