//! Cross-crate tests for the fault-tolerant streaming allocator.
//!
//! The three contracts the fault layer promises (ISSUE 10):
//!
//! 1. **Determinism under faults** — same seed + same [`FaultPlan`] →
//!    bit-identical outcomes on the dense sharded engine across 1, 2
//!    and 4 threads.
//! 2. **Distributional fidelity** — a zero-churn, zero-fault stream is
//!    the same allocation process as the batch engine: two-sample
//!    chi-square on final-load occupancy cannot tell them apart.
//! 3. **Self-stabilization** — kill half the fleet mid-run; the run
//!    completes without panicking, the degradation is *counted*
//!    (nonzero shed and/or fallbacks), and after the recovery event the
//!    gap returns to the pre-fault band.

use balls_into_bins::analysis::chisq::chi_square_sf;
use balls_into_bins::core::prelude::*;
use balls_into_bins::core::run::run_protocol;
use balls_into_bins::parallel::serve_concurrent;

/// Two-sample Pearson chi-square on a pair of occupancy histograms
/// (bins-at-load counts), pooling sparse cells; returns the p-value of
/// "same distribution".
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    assert!(cells.len() >= 2, "need at least two pooled cells");
    let mut stat = 0.0;
    for (x, y) in &cells {
        let total = x + y;
        let ex = total * na / (na + nb);
        let ey = total * nb / (na + nb);
        stat += (x - ex).powi(2) / ex + (y - ey).powi(2) / ey;
    }
    chi_square_sf(cells.len() as u64 - 1, stat)
}

/// Occupancy counts (bins at load 0, 1, …, cap) of one outcome.
fn occupancy(out: &Outcome, cap: u32) -> Vec<u64> {
    let mut counts = vec![0u64; cap as usize + 1];
    for (load, bins) in out.loads.histogram().levels() {
        counts[(load.min(cap)) as usize] += bins;
    }
    counts
}

#[test]
fn faulted_stream_is_bit_identical_across_1_2_4_threads() {
    let spec = StreamSpec::new(80, 0.08)
        .with_faults(FaultPlan::mass_failure(25, 0.5, 55, 17))
        .with_retry(RetryPolicy {
            probe_budget: 6,
            retry_budget: 3,
            backoff_cap: 4,
            fallback_alive_frac: 0.6,
        });
    let base = serve_concurrent(
        &spec,
        Family::Adaptive,
        &RunConfig::new(400, 80 * 100).with_threads(1),
        2013,
    );
    base.outcome.validate();
    for threads in [2usize, 4] {
        let cfg = RunConfig::new(400, 80 * 100).with_threads(threads);
        let run = serve_concurrent(&spec, Family::Adaptive, &cfg, 2013);
        assert_eq!(run.outcome.loads, base.outcome.loads, "{threads} threads");
        assert_eq!(
            run.outcome.scenario, base.outcome.scenario,
            "{threads} threads"
        );
        assert_eq!(run.outcome.total_samples, base.outcome.total_samples);
        assert_eq!(run.series, base.series, "{threads} threads");
        assert_eq!(run.latency, base.latency, "{threads} threads");
    }
}

#[test]
fn zero_churn_stream_is_chi_square_equivalent_to_batch() {
    // With no departures and no faults the serial stream driver is the
    // batch greedy[2] process split across ticks: same acceptance rule,
    // same histogram dynamics. Pool occupancy over replicate ensembles
    // and compare distributions.
    let n = 512usize;
    let m = 2048u64;
    let reps = 40u64;
    let cap = 12u32;
    let spec = StreamSpec::new(8, 0.0).deterministic();
    let mut stream_occ = vec![0u64; cap as usize + 1];
    let mut batch_occ = vec![0u64; cap as usize + 1];
    for rep in 0..reps {
        let cfg = RunConfig::new(n, m);
        let report = serve(&spec, Family::Greedy(2), &cfg, 9000 + rep);
        report.outcome.validate();
        assert_eq!(report.outcome.m, m, "zero churn must place every ball");
        assert_eq!(report.outcome.scenario.shed, 0);
        for (i, c) in occupancy(&report.outcome, cap).iter().enumerate() {
            stream_occ[i] += c;
        }
        let out = run_protocol(&GreedyD::new(2), &cfg, 9000 + rep);
        for (i, c) in occupancy(&out, cap).iter().enumerate() {
            batch_occ[i] += c;
        }
    }
    let p = two_sample_p(&stream_occ, &batch_occ);
    assert!(
        p > 1e-4,
        "stream vs batch occupancy distinguishable: p = {p:.6}\n\
         stream {stream_occ:?}\nbatch  {batch_occ:?}"
    );
}

#[test]
fn gap_returns_to_pre_fault_band_after_mass_failure() {
    let crash_at = 120u64;
    let recover_at = 200u64;
    let ticks = 320u64;
    let spec = StreamSpec::new(ticks, 0.10)
        .with_faults(FaultPlan::mass_failure(crash_at, 0.5, recover_at, 5))
        .with_retry(RetryPolicy {
            probe_budget: 6,
            retry_budget: 2,
            backoff_cap: 4,
            fallback_alive_frac: 0.6,
        });
    let cfg = RunConfig::new(1000, ticks * 200);
    let report = serve(&spec, Family::Greedy(2), &cfg, 2013);
    report.outcome.validate(); // completed, ledger balanced, no panic

    let s = &report.outcome.scenario;
    assert!(
        s.shed + s.fallbacks > 0,
        "killing half the fleet must leave a counted trace"
    );
    assert_eq!(s.alive_frac, 1.0, "the whole fleet recovered");

    // Pre-fault band: worst gap over the 40 ticks before the crash.
    let band = report
        .series
        .iter()
        .filter(|t| t.tick >= crash_at - 40 && t.tick < crash_at)
        .map(|t| t.gap)
        .max()
        .expect("pre-fault window");
    // During the outage the gap leaves the band...
    let worst_outage = report
        .series
        .iter()
        .filter(|t| t.tick >= crash_at && t.tick < recover_at)
        .map(|t| t.gap)
        .max()
        .expect("outage window");
    assert!(
        worst_outage > band,
        "outage should visibly disturb the gap (band {band}, outage max {worst_outage})"
    );
    // ...and settles back inside it after recovery.
    let settled = report
        .series
        .iter()
        .find(|t| t.tick > recover_at && t.gap <= band)
        .unwrap_or_else(|| panic!("gap never returned to the pre-fault band ≤ {band}"));
    assert!(
        settled.tick < ticks - 10,
        "recovery should happen with margin, not at the buzzer"
    );
    // And it stays healthy at the end.
    let last = report.series.last().expect("nonempty series");
    assert!(
        last.gap <= band + 1,
        "final gap {} outside recovered band ≤ {}",
        last.gap,
        band + 1
    );
}

#[test]
fn racy_faulted_stream_completes_and_counts_degradation() {
    let spec = StreamSpec::new(60, 0.05)
        .with_faults(FaultPlan::mass_failure(20, 0.6, 40, 3))
        .with_retry(RetryPolicy {
            probe_budget: 4,
            retry_budget: 2,
            backoff_cap: 4,
            fallback_alive_frac: 0.7,
        });
    let cfg = RunConfig::new(300, 60 * 80).with_threads(4).with_racy(true);
    let report = serve_concurrent(&spec, Family::Greedy(2), &cfg, 31);
    report.outcome.validate();
    let s = &report.outcome.scenario;
    assert!(s.shed + s.fallbacks > 0);
    assert_eq!(s.alive_frac, 1.0);
}
