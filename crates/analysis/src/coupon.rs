//! Coupon-collector expectations.
//!
//! Section 2 of the paper observes that replacing the `adaptive`
//! threshold `i/n + 1` by `i/n` turns each stage of `n` balls into
//! "basically a coupon collector process", giving Θ(m log n) total
//! allocation time. The `coupon_ablation` experiment (E8) measures that
//! process; this module supplies the exact expectations it is compared
//! against.

/// The `n`-th harmonic number `H_n = Σ_{k=1}^{n} 1/k`.
///
/// Computed by direct summation for small `n` and by the asymptotic
/// expansion `ln n + γ + 1/2n − 1/12n²` beyond 10⁶ terms (error < 1e-26
/// there).
pub fn harmonic(n: u64) -> f64 {
    const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        // Sum smallest-first for accuracy.
        let mut acc = 0.0f64;
        for k in (1..=n).rev() {
            acc += 1.0 / k as f64;
        }
        acc
    } else {
        let x = n as f64;
        x.ln() + EULER_MASCHERONI + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Expected number of uniform samples to collect all `n` coupons:
/// `n · H_n`.
pub fn expected_full_collection(n: u64) -> f64 {
    n as f64 * harmonic(n)
}

/// Expected number of uniform samples (from `n` coupons) until `k`
/// distinct coupons have been seen: `n (H_n − H_{n−k})`.
///
/// Panics if `k > n`.
pub fn expected_partial_collection(n: u64, k: u64) -> f64 {
    assert!(k <= n, "cannot collect {k} distinct coupons from {n}");
    n as f64 * (harmonic(n) - harmonic(n - k))
}

/// Expected allocation time of one *stage* of the tight-threshold
/// (`i/n`) variant discussed in Section 2, starting from a perfectly
/// balanced load vector: every one of the `n` balls must land in a bin
/// not yet hit this stage, which is exactly a full coupon collection.
pub fn tight_threshold_stage_expectation(n: u64) -> f64 {
    expected_full_collection(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-14);
    }

    #[test]
    fn harmonic_asymptotic_continuity() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        // The two computation branches must agree near the crossover.
        let exact = harmonic(1_000_000);
        let x = 1_000_001_f64;
        let approx = x.ln() + EULER + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
        assert!((harmonic(1_000_001) - approx).abs() < 1e-12);
        assert!((harmonic(1_000_001) - exact - 1.0 / 1_000_001.0).abs() < 1e-9);
    }

    #[test]
    fn full_collection_matches_known() {
        // E for n=2 is 2·(1 + 1/2) = 3.
        assert!((expected_full_collection(2) - 3.0).abs() < 1e-14);
        // Classic n=6 dice: 14.7.
        assert!((expected_full_collection(6) - 14.7).abs() < 1e-12);
    }

    #[test]
    fn partial_collection_edges() {
        assert_eq!(expected_partial_collection(10, 0), 0.0);
        assert!((expected_partial_collection(10, 10) - expected_full_collection(10)).abs() < 1e-12);
        // First coupon always takes exactly one sample.
        assert!((expected_partial_collection(7, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn partial_collection_rejects_k_gt_n() {
        expected_partial_collection(3, 4);
    }

    #[test]
    fn stage_expectation_is_m_log_n_shaped() {
        // n H_n / (n ln n) → 1.
        for &n in &[1_000u64, 100_000] {
            let ratio = tight_threshold_stage_expectation(n) / (n as f64 * (n as f64).ln());
            assert!(ratio > 1.0 && ratio < 1.2, "n={n} ratio={ratio}");
        }
    }
}
