//! Collision-style parallel allocation (Adler, Chakrabarti,
//! Mitzenmacher & Rasmussen [1] flavour).
//!
//! Round structure: every unplaced ball contacts one uniformly random
//! bin; a bin *accepts all* its requesters in this round if they number
//! at most `c` (the collision threshold), otherwise it rejects them all.
//! Accepted balls are placed; rejected balls retry next round. For
//! `m = n` and constant `c` the expected number of unplaced balls drops
//! doubly exponentially, giving `O(log log n)` rounds.

use super::round_occupancy::{resolve_round_engine, LevelSlots, RoundTrace};
use bib_core::histogram::{occupancy_profile, OccupancyHistogram};
use bib_core::protocol::{Engine, Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};

/// The collision protocol.
///
/// Degenerate inputs can livelock the pure protocol (e.g. `n = 1`,
/// `m = 2`, `c = 1`: both balls collide in the only bin forever). After
/// [`Collision::STALL_LIMIT`] consecutive rounds with no placement the
/// implementation falls back to one-choice placement for the remaining
/// balls — a documented deviation that only fires outside the `m ≤ n`
/// regime the protocol is designed for.
#[derive(Debug, Clone, Copy)]
pub struct Collision {
    c: u32,
    max_rounds: u32,
}

impl Collision {
    /// Collision threshold `c ≥ 1`.
    pub fn new(c: u32) -> Self {
        assert!(c >= 1, "collision threshold must be ≥ 1");
        Self { c, max_rounds: 256 }
    }

    /// The collision threshold.
    pub fn c(&self) -> u32 {
        self.c
    }

    /// Consecutive zero-progress rounds tolerated before the one-choice
    /// fallback kicks in.
    pub const STALL_LIMIT: u32 = 8;

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }
}

impl Protocol for Collision {
    fn name(&self) -> String {
        format!("collision(c={})", self.c)
    }

    /// Runs the process to completion; panics only if the safety round
    /// cap (256) is hit, which indicates a bug.
    ///
    /// The engine in `cfg` resolves by the parallel family's fixed rule
    /// (see [`super`]): `Faithful`/`Jump` run the per-contact rounds,
    /// `Histogram`/`LevelBatched` the round-occupancy engine,
    /// `Concurrent` the sharded multi-thread engine
    /// ([`super::concurrent`]), `Auto` the measured cutoff
    /// [`Engine::auto_parallel`] (promoted to `Concurrent` when
    /// `cfg.threads > 1`). The round-occupancy path is *exact* as a
    /// lumped chain — acceptance depends only on a bin's request
    /// multiplicity, never on its load, so the occupancy histogram is a
    /// sufficient statistic — up to the large-round
    /// multiplicity-profile approximation documented on
    /// [`occupancy_profile`].
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        match resolve_round_engine(cfg.engine, cfg.n, cfg.m, cfg.threads) {
            Engine::Histogram => self.allocate_round_occupancy(cfg, rng, obs),
            Engine::Concurrent => super::concurrent::collision(
                self.c,
                self.max_rounds,
                Self::STALL_LIMIT,
                self.name(),
                cfg,
                rng,
                obs,
            ),
            _ => self.allocate_faithful(cfg, rng, obs),
        }
    }
}

impl Collision {
    /// The faithful per-contact path: every unplaced ball draws its bin
    /// each round. Per-round cost is `O(unplaced)` — touched bins are
    /// tracked so neither the requester-count reset nor the acceptance
    /// scan ever walks the full `O(n)` bin array (late rounds have a
    /// handful of stragglers).
    fn allocate_faithful<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        let want_stages = obs.wants_stage_ends();
        let mut loads = vec![0u32; n];
        let mut unplaced = m;
        let mut messages = 0u64;
        let mut rounds = 0u32;
        // Per-bin requester counts plus the bins touched this round,
        // both reused: only touched entries are read and reset.
        let mut counts = vec![0u32; n];
        let mut touched: Vec<u32> = Vec::new();
        // Ball ids are interchangeable here (no per-ball state), so we
        // track only the count and re-sample contacts per round.
        let mut stalled = 0u32;
        while unplaced > 0 {
            rounds += 1;
            assert!(
                rounds <= self.max_rounds,
                "collision protocol failed to converge in {} rounds",
                self.max_rounds
            );
            // Dense rounds (most bins touched) resolve with one fused
            // sequential scan-and-clear; sparse rounds (late stragglers)
            // gather only the touched bins, so no round pays `O(n)` for
            // a handful of contacts.
            let dense = unplaced >= n as u64 / 64;
            if dense {
                for _ in 0..unplaced {
                    counts[rng.range_usize(n)] += 1;
                    messages += 1;
                }
            } else {
                for _ in 0..unplaced {
                    let b = rng.range_usize(n);
                    if counts[b] == 0 {
                        touched.push(b as u32);
                    }
                    counts[b] += 1;
                    messages += 1;
                }
            }
            let mut placed_this_round = 0u64;
            if dense {
                for (bin, c) in counts.iter_mut().enumerate() {
                    let cv = *c;
                    if cv == 0 {
                        continue;
                    }
                    *c = 0;
                    if cv <= self.c {
                        loads[bin] += cv;
                        placed_this_round += cv as u64;
                        messages += cv as u64; // accept messages
                    }
                }
            } else {
                for &bin in &touched {
                    let c = counts[bin as usize];
                    counts[bin as usize] = 0;
                    if c <= self.c {
                        loads[bin as usize] += c;
                        placed_this_round += c as u64;
                        messages += c as u64; // accept messages
                    }
                }
                touched.clear();
            }
            unplaced -= placed_this_round;
            if placed_this_round == 0 {
                stalled += 1;
                if stalled >= Self::STALL_LIMIT {
                    // Livelock (only possible far outside the m ≤ n design
                    // regime): finish with one-choice placements in one
                    // extra round.
                    rounds += 1;
                    for _ in 0..unplaced {
                        loads[rng.range_usize(n)] += 1;
                        messages += 2; // request + forced accept
                    }
                    unplaced = 0;
                }
            } else {
                stalled = 0;
            }
            if want_stages {
                obs.on_stage_end(rounds as u64, &loads, m - unplaced);
            }
        }
        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            // Balls are interchangeable: the worst-off ball contacted a
            // bin once in every round (exact — some ball survives to
            // the last placing round).
            max_samples_per_ball: if m > 0 { rounds as u64 } else { 0 },
            loads: loads.into(),
            scenario: Scenario::rounds(rounds, messages),
        }
    }

    /// The round-occupancy path: a round draws the multiplicity profile
    /// of `unplaced` contacts over the `n` bins
    /// ([`occupancy_profile`]), accepts the whole multiplicity classes
    /// with `k ≤ c` and spreads each class's bins over the occupancy
    /// classes without replacement ([`LevelSlots`]) — `O(max
    /// multiplicity + #classes)` per round, independent of `n` and
    /// `unplaced`. Rounds, messages, the stall fallback and the
    /// max-contacts accounting follow the faithful path's rules
    /// exactly.
    fn allocate_round_occupancy<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        let mut hist = OccupancyHistogram::new(n);
        let trace = RoundTrace::new(n, rng, obs);
        let mut unplaced = m;
        let mut messages = 0u64;
        let mut rounds = 0u32;
        let mut stalled = 0u32;
        let mut cells: Vec<u64> = Vec::new();
        let mut level_buf: Vec<(u32, u64)> = Vec::new();
        while unplaced > 0 {
            rounds += 1;
            assert!(
                rounds <= self.max_rounds,
                "collision protocol failed to converge in {} rounds",
                self.max_rounds
            );
            messages += unplaced;
            occupancy_profile(n as u64, unplaced, &mut cells, rng);
            let mut slots = LevelSlots::snapshot(&hist, None, level_buf);
            let mut placed_this_round = 0u64;
            // Multiplicity groups are disjoint bin sets: every group —
            // accepted or rejected — consumes its slots so later
            // groups' class splits condition on it.
            for (j, &nj) in cells.iter().enumerate().skip(1) {
                if nj == 0 {
                    continue;
                }
                if j as u64 <= self.c as u64 {
                    slots.assign(nj, rng, |l, cnt| hist.promote(l, cnt, j as u32));
                    placed_this_round += j as u64 * nj;
                } else {
                    slots.assign(nj, rng, |_, _| {});
                }
            }
            // Exactly the untouched bins are left unassigned.
            debug_assert_eq!(slots.remaining(), cells[0]);
            level_buf = slots.into_buf();
            messages += placed_this_round; // accept messages
            unplaced -= placed_this_round;
            if placed_this_round == 0 {
                stalled += 1;
                if stalled >= Self::STALL_LIMIT {
                    // Livelock fallback, mirroring the faithful path:
                    // one-choice placements in one extra round — an
                    // unconditional throw, accepted at any
                    // multiplicity.
                    rounds += 1;
                    occupancy_profile(n as u64, unplaced, &mut cells, rng);
                    let mut slots = LevelSlots::snapshot(&hist, None, level_buf);
                    for (j, &nj) in cells.iter().enumerate().skip(1) {
                        if nj > 0 {
                            slots.assign(nj, rng, |l, cnt| hist.promote(l, cnt, j as u32));
                        }
                    }
                    level_buf = slots.into_buf();
                    messages += 2 * unplaced; // request + forced accept
                    unplaced = 0;
                }
            } else {
                stalled = 0;
            }
            trace.stage_end(obs, rounds, &hist, m - unplaced);
        }
        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            max_samples_per_ball: if m > 0 { rounds as u64 } else { 0 },
            loads: trace.finish(&hist, rng),
            scenario: Scenario::rounds(rounds, messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn terminates_and_conserves_mass() {
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = Collision::new(1).run(512, 512, &mut rng);
            out.validate();
            assert!(out.rounds() >= 1);
        }
    }

    #[test]
    fn rounds_are_log_log_ish() {
        // With c = 1 and m = n, rounds should stay in the single digits
        // well past n = 10⁵ (log log n ≈ 4).
        let mut rng = SplitMix64::new(6);
        let out = Collision::new(1).run(1 << 17, 1 << 17, &mut rng);
        assert!(out.rounds() <= 15, "rounds {}", out.rounds());
    }

    #[test]
    fn larger_threshold_fewer_rounds() {
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let tight = Collision::new(1).run(1 << 14, 1 << 14, &mut r1);
        let loose = Collision::new(4).run(1 << 14, 1 << 14, &mut r2);
        assert!(
            loose.rounds() <= tight.rounds(),
            "{} vs {}",
            loose.rounds(),
            tight.rounds()
        );
    }

    #[test]
    fn max_load_bounded_by_c_times_rounds() {
        let mut rng = SplitMix64::new(8);
        let out = Collision::new(2).run(1024, 1024, &mut rng);
        assert!(out.max_load() <= 2 * out.rounds());
        // Empirically far smaller: a bin rarely wins twice.
        assert!(out.max_load() <= 8, "max load {}", out.max_load());
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(9);
        let out = Collision::new(1).run(4, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
    }
}
