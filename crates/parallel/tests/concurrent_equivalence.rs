//! Correctness contract of the sharded concurrent engine.
//!
//! Two claims (see `bib_parallel::protocols::concurrent`):
//!
//! * **Deterministic mode** is bit-reproducible across thread counts —
//!   the same seed gives the *identical* outcome at `threads = 1, 2, 8`
//!   — and induces the same distribution as `Engine::Faithful` on the
//!   outcome marginals (it reproduces each faithful path's per-round
//!   law exactly, from different streams).
//! * **Racy mode** (`RunConfig::racy`) trades reproducibility for
//!   contention-ordered placements; it must still match the faithful
//!   law distributionally. Checked by two-sample chi-square on the
//!   max-load, rounds and messages marginals.
//!
//! Plus the plumbing: stage traces fire once per round on the
//! concurrent path, sure invariants hold in both modes, and `Auto`
//! promotes to `Concurrent` when threads are requested.

use bib_analysis::chisq::chi_square_sf;
use bib_core::prelude::*;
use bib_core::protocol::StageTrace;
use bib_core::run::{run_protocol, run_with_observer};
use bib_parallel::protocols::{BoundedLoad, Collision, ParallelGreedy};

const ALPHA: f64 = 1e-4;

/// Two-sample Pearson chi-square on a pair of histograms with pooling
/// of sparse cells; returns the p-value of "same distribution" (same
/// idiom as `round_engine_equivalence`).
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    if cells.len() < 2 {
        return 1.0;
    }
    let mut stat = 0.0;
    for &(x, y) in &cells {
        let tot = x + y;
        let ex = tot * na / (na + nb);
        let ey = tot * nb / (na + nb);
        stat += (x - ex) * (x - ex) / ex + (y - ey) * (y - ey) / ey;
    }
    chi_square_sf((cells.len() - 1) as u64, stat)
}

/// Histograms a per-outcome statistic over replicate ensembles of the
/// faithful engine and a concurrent configuration.
fn vs_faithful_histograms<P, F>(
    proto: &P,
    n: usize,
    m: u64,
    racy: bool,
    reps: u64,
    cells: usize,
    stat: F,
) -> (Vec<u64>, Vec<u64>)
where
    P: Protocol,
    F: Fn(&Outcome) -> usize,
{
    let configs = [
        RunConfig::new(n, m).with_engine(Engine::Faithful),
        RunConfig::new(n, m)
            .with_engine(Engine::Concurrent)
            .with_threads(3)
            .with_racy(racy),
    ];
    let mut hists = Vec::new();
    for (which, cfg) in configs.iter().enumerate() {
        let mut h = vec![0u64; cells];
        for rep in 0..reps {
            // Distinct seed spaces per engine: the comparison is
            // distributional, not stream-coupled.
            let seed = rep + which as u64 * 1_000_000;
            let out = run_protocol(proto, cfg, seed);
            let idx = stat(&out).min(cells - 1);
            h[idx] += 1;
        }
        hists.push(h);
    }
    let b = hists.pop().unwrap();
    let a = hists.pop().unwrap();
    (a, b)
}

/// Asserts the three standard marginals match the faithful law.
fn assert_marginals_match<P: Protocol>(proto: &P, racy: bool, msg_floor: u64, msg_step: u64) {
    let (n, m, reps) = (1024usize, 1024u64, 300u64);
    let label = if racy { "racy" } else { "deterministic" };
    let (a, b) = vs_faithful_histograms(proto, n, m, racy, reps, 12, |o| o.max_load() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "{label} max-load: p = {p:.2e} ({a:?} vs {b:?})");
    let (a, b) = vs_faithful_histograms(proto, n, m, racy, reps, 16, |o| o.rounds() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "{label} rounds: p = {p:.2e} ({a:?} vs {b:?})");
    let (a, b) = vs_faithful_histograms(proto, n, m, racy, reps, 40, |o| {
        (o.messages().saturating_sub(msg_floor) / msg_step) as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(p > ALPHA, "{label} messages: p = {p:.2e} ({a:?} vs {b:?})");
}

// ---------------------------------------------------------------------
// Bit-reproducibility across thread counts (deterministic mode).
// ---------------------------------------------------------------------

#[test]
fn deterministic_mode_is_thread_count_invariant() {
    // The whole point of the per-(round, chunk) stream discipline: the
    // outcome is a pure function of the seed, not of the worker count.
    let (n, m) = (4096usize, 4096u64);
    for proto in [
        Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
        Box::new(BoundedLoad::new(2)),
        Box::new(ParallelGreedy::new(2, 4, 1)),
    ] {
        let reference = run_protocol(
            proto.as_ref(),
            &RunConfig::new(n, m)
                .with_engine(Engine::Concurrent)
                .with_threads(1),
            42,
        );
        reference.validate();
        for threads in [2usize, 8] {
            let cfg = RunConfig::new(n, m)
                .with_engine(Engine::Concurrent)
                .with_threads(threads);
            let out = run_protocol(proto.as_ref(), &cfg, 42);
            assert_eq!(
                out, reference,
                "{} diverged at {threads} threads",
                reference.protocol
            );
        }
    }
}

#[test]
fn auto_with_threads_promotes_to_concurrent() {
    // `Auto` + `--threads N>1` must take the concurrent path, not
    // silently run a serial engine (the single-replicate routing fix).
    let cfg_auto = RunConfig::new(512, 512)
        .with_engine(Engine::Auto)
        .with_threads(4);
    let cfg_conc = RunConfig::new(512, 512)
        .with_engine(Engine::Concurrent)
        .with_threads(4);
    for proto in [
        Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
        Box::new(BoundedLoad::new(2)),
        Box::new(ParallelGreedy::new(2, 3, 1)),
    ] {
        let a = run_protocol(proto.as_ref(), &cfg_auto, 7);
        let b = run_protocol(proto.as_ref(), &cfg_conc, 7);
        assert_eq!(a, b, "Auto+threads should alias Concurrent");
    }
}

// ---------------------------------------------------------------------
// Distributional equivalence against the faithful engine.
// ---------------------------------------------------------------------

#[test]
fn collision_deterministic_marginals_match() {
    assert_marginals_match(&Collision::new(1), false, 2 * 1024, 1024 / 24);
}

#[test]
fn collision_racy_marginals_match() {
    assert_marginals_match(&Collision::new(1), true, 2 * 1024, 1024 / 24);
}

#[test]
fn bounded_load_deterministic_marginals_match() {
    assert_marginals_match(&BoundedLoad::new(2), false, 1024, 1024 / 12);
}

#[test]
fn bounded_load_racy_marginals_match() {
    assert_marginals_match(&BoundedLoad::new(2), true, 1024, 1024 / 12);
}

#[test]
fn parallel_greedy_deterministic_marginals_match() {
    assert_marginals_match(&ParallelGreedy::new(2, 4, 1), false, 1024, 1024 / 16);
}

#[test]
fn parallel_greedy_racy_marginals_match() {
    assert_marginals_match(&ParallelGreedy::new(2, 4, 1), true, 1024, 1024 / 16);
}

// ---------------------------------------------------------------------
// Sure invariants and plumbing on the concurrent path.
// ---------------------------------------------------------------------

#[test]
fn concurrent_invariants_both_modes() {
    for racy in [false, true] {
        for (n, m) in [(1usize, 3u64), (2, 2), (8, 8), (100, 100), (5000, 5000)] {
            let cfg = RunConfig::new(n, m)
                .with_engine(Engine::Concurrent)
                .with_threads(4)
                .with_racy(racy);
            let out = run_protocol(&Collision::new(1), &cfg, n as u64);
            out.validate();
            assert_eq!(out.scenario.label(), "parallel");
            assert!(out.rounds() >= 1);
            assert!(out.messages() >= m);
            let out = run_protocol(&ParallelGreedy::new(2, 3, 1), &cfg, n as u64);
            out.validate();
            assert!(out.rounds() <= 3);
            if 2 * n as u64 >= m {
                let out = run_protocol(&BoundedLoad::new(2), &cfg, n as u64);
                out.validate();
                assert!(out.max_load() <= 2, "cap violated: {}", out.max_load());
            }
        }
    }
}

#[test]
fn concurrent_exact_fill_at_capacity() {
    // m = cap·n: every slot must fill, surely, in both modes.
    for racy in [false, true] {
        let cfg = RunConfig::new(64, 128)
            .with_engine(Engine::Concurrent)
            .with_threads(4)
            .with_racy(racy);
        let out = run_protocol(&BoundedLoad::new(2), &cfg, 9);
        assert_eq!(out.loads, vec![2u32; 64]);
    }
}

#[test]
fn concurrent_stage_traces_fire_once_per_round() {
    for racy in [false, true] {
        let cfg = RunConfig::new(256, 256)
            .with_engine(Engine::Concurrent)
            .with_threads(3)
            .with_racy(racy);
        for proto in [
            Box::new(Collision::new(1)) as Box<dyn DynProtocol>,
            Box::new(BoundedLoad::new(2)),
            Box::new(ParallelGreedy::new(2, 4, 1)),
        ] {
            let mut trace = StageTrace::new();
            let out = run_with_observer(proto.as_ref(), &cfg, 11, &mut trace);
            assert_eq!(
                trace.stages,
                (1..=out.rounds() as u64).collect::<Vec<_>>(),
                "{} (racy={racy})",
                out.protocol
            );
            // The last trace frame is the final state: its gap matches.
            assert_eq!(*trace.gaps.last().unwrap(), out.gap(), "{}", out.protocol);
        }
    }
}
