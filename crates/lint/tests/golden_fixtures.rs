//! Golden-fixture tests: for every rule, one violating fixture that
//! fires, one clean fixture that stays silent, and one fixture whose
//! only defence is a justified `lint:allow` pragma.
//!
//! Fixtures live in `tests/fixtures/<rule>/` and are fed through
//! [`lint::audit_source`] with a synthetic in-scope path, so they never
//! need to compile and the workspace walk never sees them (the
//! `fixtures` directory is on the skip list).

use lint::audit_source;
use lint::rules::Finding;

/// Runs one fixture at `rel_path` and returns the findings for `rule`
/// plus any `pragma` findings (a broken pragma in a fixture is a bug).
fn run(rule: &str, rel_path: &str, src: &str) -> Vec<Finding> {
    audit_source(rel_path, src)
        .into_iter()
        .filter(|f| f.rule == rule || f.rule == "pragma")
        .collect()
}

/// Asserts the violating/clean/suppressed triple for one rule at one
/// synthetic path.
fn check_triple(rule: &str, rel_path: &str, violating: &str, clean: &str, suppressed: &str) {
    let v = run(rule, rel_path, violating);
    assert!(
        v.iter().any(|f| f.rule == rule),
        "{rule}: violating fixture produced no {rule} finding at {rel_path}: {v:?}"
    );
    let c = run(rule, rel_path, clean);
    assert!(
        c.is_empty(),
        "{rule}: clean fixture is not clean at {rel_path}: {c:?}"
    );
    let s = run(rule, rel_path, suppressed);
    assert!(
        s.is_empty(),
        "{rule}: justified pragmas failed to suppress at {rel_path}: {s:?}"
    );
}

#[test]
fn d1_wall_clock() {
    check_triple(
        "D1",
        "crates/core/src/fix.rs",
        include_str!("fixtures/d1/violating.rs"),
        include_str!("fixtures/d1/clean.rs"),
        include_str!("fixtures/d1/suppressed.rs"),
    );
}

#[test]
fn d1_is_allowed_in_bench_crates() {
    // The same wall-clock read is in-policy inside the bench harness
    // and the criterion stand-in.
    let src = include_str!("fixtures/d1/violating.rs");
    for path in [
        "crates/bench/src/fix.rs",
        "crates/compat/criterion/src/fix.rs",
    ] {
        assert!(run("D1", path, src).is_empty(), "D1 fired in {path}");
    }
}

#[test]
fn d2_hash_iteration() {
    // Outcome-producing crates are governed *including* their tests:
    // the equivalence suites compare distributions.
    check_triple(
        "D2",
        "crates/parallel/tests/fix.rs",
        include_str!("fixtures/d2/violating.rs"),
        include_str!("fixtures/d2/clean.rs"),
        include_str!("fixtures/d2/suppressed.rs"),
    );
}

#[test]
fn d2_scoped_to_outcome_crates() {
    let src = include_str!("fixtures/d2/violating.rs");
    assert!(
        run("D2", "crates/lint/src/fix.rs", src).is_empty(),
        "D2 fired outside the Outcome-producing crates"
    );
}

#[test]
fn d3_ambient_entropy() {
    check_triple(
        "D3",
        "crates/rng/src/fix.rs",
        include_str!("fixtures/d3/violating.rs"),
        include_str!("fixtures/d3/clean.rs"),
        include_str!("fixtures/d3/suppressed.rs"),
    );
}

#[test]
fn p1_bare_panics() {
    check_triple(
        "P1",
        "crates/core/src/fix.rs",
        include_str!("fixtures/p1/violating.rs"),
        include_str!("fixtures/p1/clean.rs"),
        include_str!("fixtures/p1/suppressed.rs"),
    );
}

#[test]
fn p1_violating_fixture_fires_twice() {
    // Both the bare unwrap() and the empty expect("") must be caught.
    let v = run(
        "P1",
        "crates/core/src/fix.rs",
        include_str!("fixtures/p1/violating.rs"),
    );
    assert_eq!(v.len(), 2, "expected unwrap() and expect(\"\"): {v:?}");
}

#[test]
fn p1_exempts_tests_sections_and_non_policy_crates() {
    let src = include_str!("fixtures/p1/violating.rs");
    for path in ["crates/core/tests/fix.rs", "crates/bench/src/fix.rs"] {
        assert!(run("P1", path, src).is_empty(), "P1 fired in {path}");
    }
}

#[test]
fn n1_narrowing_casts() {
    check_triple(
        "N1",
        "crates/core/src/fix.rs",
        include_str!("fixtures/n1/violating.rs"),
        include_str!("fixtures/n1/clean.rs"),
        include_str!("fixtures/n1/suppressed.rs"),
    );
}

#[test]
fn n1_scoped_to_cast_crates() {
    let src = include_str!("fixtures/n1/violating.rs");
    for path in ["crates/rng/src/fix.rs", "crates/core/tests/fix.rs"] {
        assert!(run("N1", path, src).is_empty(), "N1 fired in {path}");
    }
}

#[test]
fn c1_atomics_need_ordering_comments() {
    check_triple(
        "C1",
        "crates/parallel/src/fix.rs",
        include_str!("fixtures/c1/violating.rs"),
        include_str!("fixtures/c1/clean.rs"),
        include_str!("fixtures/c1/suppressed.rs"),
    );
}

#[test]
fn c1_applies_to_tests_too() {
    // Unlike P1/N1, the concurrency contract has no test carve-out: an
    // atomic in a test still encodes an ordering assumption.
    let v = run(
        "C1",
        "crates/parallel/tests/fix.rs",
        include_str!("fixtures/c1/violating.rs"),
    );
    assert!(!v.is_empty(), "C1 should govern tests as well");
}

#[test]
fn c1_crate_root_must_forbid_unsafe() {
    let bare = "//! A crate root.\npub fn f() {}\n";
    let v = run("C1", "crates/foo/src/lib.rs", bare);
    assert!(
        v.iter().any(|f| f.rule == "C1" && f.line == 1),
        "missing #![forbid(unsafe_code)] went unflagged: {v:?}"
    );

    let forbidding = "//! A crate root.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(run("C1", "crates/foo/src/lib.rs", forbidding).is_empty());

    // Same text is fine at a non-root path.
    assert!(run("C1", "crates/foo/src/util.rs", bare).is_empty());
}

#[test]
fn c2_cas_loops_need_retry_comments() {
    check_triple(
        "C2",
        "crates/parallel/src/fix.rs",
        include_str!("fixtures/c2/violating.rs"),
        include_str!("fixtures/c2/clean.rs"),
        include_str!("fixtures/c2/suppressed.rs"),
    );
}

#[test]
fn c2_applies_to_tests_too() {
    // Same scope as C1: a CAS loop in a test can hang the suite just
    // as well as one in library code.
    let v = run(
        "C2",
        "crates/parallel/tests/fix.rs",
        include_str!("fixtures/c2/violating.rs"),
    );
    assert!(!v.is_empty(), "C2 should govern tests as well");
}

#[test]
fn c2_every_cas_spelling_is_flagged() {
    for op in ["compare_exchange", "compare_exchange_weak", "fetch_update"] {
        let src = format!(
            "use std::sync::atomic::{{AtomicU64, Ordering}};\n\
             pub fn f(x: &AtomicU64) {{\n\
                 let _ = x.{op}(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v));\n\
             }}\n"
        );
        let v = run("C2", "crates/core/src/fix.rs", &src);
        assert!(v.iter().any(|f| f.rule == "C2"), "C2 missed `{op}`: {v:?}");
    }
}

#[test]
fn unjustified_pragma_is_a_finding() {
    let src =
        "// lint:allow(D1)\nuse std::time::Instant;\npub fn f() -> Instant { Instant::now() }\n";
    let findings = audit_source("crates/core/src/fix.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "pragma"),
        "unjustified pragma not flagged: {findings:?}"
    );
    // And without a justification it suppresses nothing.
    assert!(
        findings.iter().any(|f| f.rule == "D1"),
        "unjustified pragma still suppressed the finding: {findings:?}"
    );
}

#[test]
fn unknown_rule_pragma_is_a_finding() {
    let src = "// lint:allow(Z9): sounds official\npub fn f() {}\n";
    let findings = audit_source("crates/core/src/fix.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("Z9")),
        "unknown rule in pragma not flagged: {findings:?}"
    );
}

#[test]
fn pragma_does_not_reach_past_one_line() {
    // A pragma two lines above the violation must not suppress it.
    let src = "// lint:allow(D1): too far away\n\nuse std::time::Instant;\n";
    let findings = run("D1", "crates/core/src/fix.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "D1"),
        "pragma suppressed a finding two lines below: {findings:?}"
    );
}

#[test]
fn strings_and_comments_never_fire() {
    let src = concat!(
        "//! Mentions Instant, HashMap, thread_rng, unwrap() in prose.\n",
        "pub fn f() -> &'static str {\n",
        "    \"Instant HashMap thread_rng as u32 fetch_add unsafe\"\n",
        "}\n",
    );
    for path in ["crates/core/src/fix.rs", "crates/parallel/src/fix.rs"] {
        let findings = audit_source(path, src);
        assert!(findings.is_empty(), "{path}: fired on prose: {findings:?}");
    }
}
