//! **Per-ball retry distribution** — where threshold's
//! `O(m^{3/4} n^{1/4})` excess actually lives.
//!
//! The proof of Theorem 4.1 says most balls place on the first sample
//! and the excess concentrates in the late balls hunting for the last
//! holes. This binary histograms the number of samples per ball for
//! `threshold` and `adaptive` (whole run, plus threshold's last 1% of
//! balls) and prints the exact geometric prediction for the final ball
//! (`n / #open-bins-at-the-end` expected samples).
//!
//! ```text
//! cargo run --release -p bib-bench --bin retry_histogram [-- --quick --csv]
//! ```

use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_core::protocol::{Observer, SampleHistogram};
use bib_core::run::run_with_observer;

/// Observer that histograms only the last `tail` balls.
struct TailHistogram {
    inner: SampleHistogram,
    from_ball: u64,
}

impl Observer for TailHistogram {
    fn on_ball(&mut self, ball: u64, bin: usize, samples: u64) {
        if ball >= self.from_ball {
            self.inner.on_ball(ball, bin, samples);
        }
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(16_384usize, 1_024usize);
    let phi = 64u64;
    let m = phi * n as u64;
    let cells = 16usize;
    let engine = args.engine_or(Engine::Faithful);
    assert!(
        matches!(engine, Engine::Faithful | Engine::Jump),
        "retry_histogram needs per-ball events; the batched engines (and an auto that could \
         resolve to one) produce none (use --engine faithful or jump)"
    );
    let cfg = RunConfig::new(n, m).with_engine(engine);

    println!("# Per-ball retry histogram; n = {n}, phi = {phi} ({engine} engine)\n");
    let mut table = Table::new(vec![
        "samples",
        "adaptive_frac",
        "threshold_frac",
        "threshold_last1%_frac",
    ]);

    let mut ada_h = SampleHistogram::new(cells);
    run_with_observer(&Adaptive::paper(), &cfg, args.seed, &mut ada_h);
    let mut thr_h = SampleHistogram::new(cells);
    run_with_observer(&Threshold, &cfg, args.seed, &mut thr_h);
    let mut thr_tail = TailHistogram {
        inner: SampleHistogram::new(cells),
        from_ball: m - m / 100,
    };
    run_with_observer(&Threshold, &cfg, args.seed, &mut thr_tail);

    let total_a: u64 = ada_h.counts.iter().sum();
    let total_t: u64 = thr_h.counts.iter().sum();
    let total_tt: u64 = thr_tail.inner.counts.iter().sum();
    for k in 0..cells {
        let label = if k + 1 == cells {
            format!(">={}", cells)
        } else {
            (k + 1).to_string()
        };
        table.row(vec![
            label,
            f(ada_h.counts[k] as f64 / total_a as f64),
            f(thr_h.counts[k] as f64 / total_t as f64),
            f(thr_tail.inner.counts[k] as f64 / total_tt as f64),
        ]);
    }
    table.print(&args);

    println!("\n# Expected shape: both protocols place the overwhelming majority of");
    println!("# balls on the first sample; threshold's retries concentrate in the");
    println!("# final balls (last-1% column is much heavier-tailed), which is where");
    println!("# the O(m^(3/4) n^(1/4)) excess of Theorem 4.1 lives. adaptive spreads");
    println!("# a modest retry cost evenly (its threshold tracks the fill level).");
}
