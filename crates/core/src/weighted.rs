//! Heterogeneous-capacity extension: bins with weights, unified with
//! the scenario layer and accelerated by a weight-class histogram
//! engine.
//!
//! The paper's model gives every bin the same capacity share. A natural
//! extension (think servers of different sizes) assigns bin `j` a weight
//! `w_j ≥ 0`; bin `j`'s *fair share* of `t` balls is `t·w_j/W` where
//! `W = Σ w`. The weighted analogue of `adaptive` samples bins
//! **proportionally to weight** (via an alias table) and accepts bin `j`
//! for ball `i` iff
//!
//! ```text
//! load_j < i·w_j/W + 1
//! ```
//!
//! which degenerates to the paper's protocol for uniform weights and
//! yields the per-bin guarantee `load_j ≤ ⌈m·w_j/W⌉ + 1` by the same
//! one-line argument as in the uniform case. Feasibility also carries
//! over: if every bin had `load_j ≥ i·w_j/W + 1` then summing gives
//! `i − 1 ≥ Σ load_j ≥ i + n`, a contradiction.
//!
//! # Architecture
//!
//! Since the scenario-layer refactor the weighted family is no longer a
//! silo: [`WeightedAdaptive`] and [`WeightedOneChoice`] are thin
//! implementations of [`WeightedSchedule`] (the family's scheduling
//! contract) plus [`Protocol`], so they flow through `run_protocol`,
//! observers, `DynProtocol` suites and `bib-parallel`'s
//! `replicate_outcomes` exactly like the uniform protocols, and their
//! outcomes are ordinary [`Outcome`]s annotated with
//! [`Scenario::weighted`]. Two drivers consume the schedule:
//!
//! * [`drive_weighted_sequential`] — the faithful per-ball alias loop
//!   (engines `Faithful`/`Jump`), built on the shared
//!   [`drive_sequential`] harness so per-ball observers fire;
//! * [`drive_weighted_histogram`] — the weight-class histogram engine
//!   (engines `Histogram`/`LevelBatched`): bins are grouped into
//!   [`WeightClasses`]; each class keeps its own
//!   [`OccupancyHistogram`]; a segment's intake splits across classes
//!   with conditional binomials weighted by *open class mass*
//!   (`k_c·w_c/W`), lands within a class through the same occupancy
//!   scatter rounds as the uniform engine, and the last few balls run
//!   an exact per-class collapsed tail. Per-class integer bounds are
//!   derived from the same float acceptance limit the faithful driver
//!   compares against ([`strict_int_bound`]), so the two drivers make
//!   identical accept/reject decisions on every (bin, ball, load)
//!   triple; the chi-square suite in `tests/weighted_equivalence.rs`
//!   bounds the residual (scatter-approximation) error.
//!
//! `Engine::Auto` resolves weighted cells through
//! [`Engine::auto_weighted`]. When the number of *distinct* weights
//! exceeds [`MAX_WEIGHT_CLASSES`], the classes geometrically quantize
//! the weight range — a documented approximation (class members then
//! use their class's mean weight, perturbing acceptance bounds by the
//! bucket width); with at most that many distinct weights the grouping
//! is exact.
//!
//! [`Scenario::weighted`]: crate::scenario::Scenario::weighted

use crate::histogram::{random_permutation, round_uniform, OccupancyHistogram};
use crate::level_batched::stream_samples_for_hits_bounded;
use crate::protocol::{drive_sequential, Engine, Observer, Outcome, Protocol, RunConfig};
use crate::scenario::{strict_int_bound, Scenario, WeightedSchedule};
use bib_rng::dist::{AliasTable, Distribution, GeometricSampler};
use bib_rng::{Rng64, RngExt};

/// Above this many distinct weights the classes geometrically quantize
/// the positive weight range instead of grouping exactly. The engine's
/// per-segment cost grows with the class count, so the cap is also a
/// performance guard.
pub const MAX_WEIGHT_CLASSES: usize = 64;

/// Below this many remaining balls a weighted batched round stops
/// paying for its per-class fixed cost and the exact per-ball tail
/// takes over (mirrors the uniform histogram engine's cutoff).
const ROUND_CUTOFF: u64 = 16;

/// Exact-summation ceiling for the negative-binomial allocation-time
/// draw of a weighted round (the histogram engine's small ceiling: many
/// small rounds per segment).
const SAMPLES_EXACT_CUTOFF: u64 = 32;

/// Validates a weight vector: non-empty, every entry finite and
/// non-negative, at least one entry positive. Returns the total weight.
fn validate_weights(weights: &[f64]) -> f64 {
    assert!(!weights.is_empty(), "need at least one bin");
    let mut total = 0.0f64;
    for &w in weights {
        assert!(
            w >= 0.0 && w.is_finite(),
            "weights must be non-negative and finite, got {w}"
        );
        total += w;
    }
    assert!(total > 0.0, "need at least one positive weight");
    total
}

/// Bins grouped by weight for the weight-class histogram engine.
///
/// With at most [`MAX_WEIGHT_CLASSES`] distinct weights the grouping is
/// *exact*: every member keeps its own weight and the engine's
/// acceptance bounds coincide with the faithful driver's. Beyond that
/// the positive range quantizes into geometric buckets and each class
/// uses its members' mean weight (`exact()` reports which case holds).
/// Zero-weight bins form their own class that is never sampled.
#[derive(Debug, Clone)]
pub struct WeightClasses {
    /// Member bin indices per class (ascending weight order).
    members: Vec<Vec<u32>>,
    /// Representative weight per class.
    weight: Vec<f64>,
    /// Whether every member's weight equals its class weight exactly.
    exact: bool,
    /// Total weight of the *original* vector (`Σ w_j`).
    w_total: f64,
}

impl WeightClasses {
    /// Groups `weights` into at most [`MAX_WEIGHT_CLASSES`] positive
    /// classes (plus a zero class if zero weights are present).
    pub fn build(weights: &[f64]) -> Self {
        let w_total = validate_weights(weights);
        // Exact grouping by weight value, ascending.
        let n = u32::try_from(weights.len()).expect("bin count exceeds u32 — bin ids are u32");
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by(|&a, &b| {
            weights[a as usize]
                .partial_cmp(&weights[b as usize])
                .expect("validate_weights rejected NaN, so weights are totally ordered")
        });
        let mut distinct = 0usize;
        let mut prev = f64::NAN;
        for &j in &order {
            let w = weights[j as usize];
            if w != prev {
                distinct += 1;
                prev = w;
            }
        }
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut weight: Vec<f64> = Vec::new();
        let exact = distinct <= MAX_WEIGHT_CLASSES + usize::from(weights[order[0] as usize] == 0.0);
        if exact {
            let mut prev = f64::NAN;
            for &j in &order {
                let w = weights[j as usize];
                if w != prev {
                    members.push(Vec::new());
                    weight.push(w);
                    prev = w;
                }
                members
                    .last_mut()
                    .expect("a class is pushed before its first member (prev starts at NaN)")
                    .push(j);
            }
        } else {
            // Geometric buckets over the positive range; the class
            // weight is the members' mean so the total sampling mass is
            // preserved exactly.
            let mut w_min = f64::INFINITY;
            let mut w_max = 0.0f64;
            for &w in weights {
                if w > 0.0 {
                    w_min = w_min.min(w);
                    w_max = w_max.max(w);
                }
            }
            let span = (w_max / w_min).ln().max(1e-12);
            let buckets = MAX_WEIGHT_CLASSES;
            let mut bucket_members: Vec<Vec<u32>> = vec![Vec::new(); buckets + 1];
            for &j in &order {
                let w = weights[j as usize];
                if w == 0.0 {
                    bucket_members[buckets].push(j);
                } else {
                    let b = (((w / w_min).ln() / span) * buckets as f64) as usize;
                    bucket_members[b.min(buckets - 1)].push(j);
                }
            }
            if !bucket_members[buckets].is_empty() {
                members.push(std::mem::take(&mut bucket_members[buckets]));
                weight.push(0.0);
            }
            for bucket in bucket_members[..buckets].iter_mut() {
                let ms = std::mem::take(bucket);
                if ms.is_empty() {
                    continue;
                }
                let mean = ms.iter().map(|&j| weights[j as usize]).sum::<f64>() / ms.len() as f64;
                members.push(ms);
                weight.push(mean);
            }
        }
        Self {
            members,
            weight,
            exact,
            w_total,
        }
    }

    /// Number of classes (including a zero class, if any).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no classes (never: construction requires a
    /// non-empty weight vector).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the grouping preserved every weight exactly.
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// Class `c`'s representative weight.
    pub fn weight(&self, c: usize) -> f64 {
        self.weight[c]
    }

    /// Class `c`'s member bin indices.
    pub fn members(&self, c: usize) -> &[u32] {
        &self.members[c]
    }

    /// Per-bin share `w_c/W` of class `c`'s members.
    pub fn share(&self, c: usize) -> f64 {
        self.weight[c] / self.w_total
    }
}

/// How a weighted protocol bounds acceptance: the retry rule half of
/// the family, shared by both the faithful and the histogram drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeightedRule {
    /// `load < i·w/W + 1` — the count-free adaptive analogue.
    Adaptive,
    /// `load < m·w/W + 1` — the static-threshold analogue (`m` known).
    Threshold,
}

/// The weighted adaptive protocol (and its static-threshold variant).
///
/// # Examples
///
/// ```
/// use bib_core::weighted::WeightedAdaptive;
/// use bib_rng::SeedSequence;
///
/// // One big server (weight 3) and three small ones.
/// let proto = WeightedAdaptive::new(vec![3.0, 1.0, 1.0, 1.0]);
/// let mut rng = SeedSequence::new(5).rng();
/// let out = proto.run(6_000, &mut rng);
/// out.validate();
/// // Every bin within +2 of its fair share m·w/W.
/// assert!(out.max_overload() <= 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAdaptive {
    weights: Vec<f64>,
    rule: WeightedRule,
}

impl WeightedAdaptive {
    /// Creates the adaptive-rule protocol; panics if `weights` is
    /// empty, contains a negative or non-finite entry, or has no
    /// positive entry. Zero weights are legal: such a bin is never
    /// sampled and finishes with load 0.
    pub fn new(weights: Vec<f64>) -> Self {
        validate_weights(&weights);
        Self {
            weights,
            rule: WeightedRule::Adaptive,
        }
    }

    /// The static-threshold variant: accept `load < m·w/W + 1` (the
    /// weighted Czumaj–Stemann rule; `m` must be known in advance).
    pub fn threshold(weights: Vec<f64>) -> Self {
        validate_weights(&weights);
        Self {
            weights,
            rule: WeightedRule::Threshold,
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Runs the full allocation of `m` balls with the faithful per-ball
    /// engine (back-compatible convenience; go through
    /// [`run_protocol`](crate::run::run_protocol) with a
    /// [`RunConfig`] to pick an engine).
    pub fn run<R: Rng64 + ?Sized>(&self, m: u64, rng: &mut R) -> Outcome {
        let cfg = RunConfig::new(self.weights.len(), m);
        self.allocate(&cfg, rng, &mut crate::protocol::NullObserver)
    }
}

impl WeightedSchedule for WeightedAdaptive {
    fn accept_limit(&self, share: f64, ball: u64, m: u64) -> Option<f64> {
        match self.rule {
            WeightedRule::Adaptive => Some(ball as f64 * share + 1.0),
            WeightedRule::Threshold => Some(m as f64 * share + 1.0),
        }
    }

    fn segment_end(&self, share: f64, ball: u64, m: u64) -> u64 {
        match self.rule {
            WeightedRule::Threshold => m,
            WeightedRule::Adaptive => {
                // Closed-form candidate: the bound steps from t to t+1
                // just past i = (t−1)/share; fix up with the exact
                // comparison (float error is a few ulps at most).
                let bnd = |i: u64| strict_int_bound(i as f64 * share + 1.0);
                let t = bnd(ball);
                let mut i = ((t as f64 - 1.0) / share).floor().min(m as f64) as u64;
                i = i.max(ball).min(m);
                while i > ball && bnd(i) > t {
                    i -= 1;
                }
                while i < m && bnd(i + 1) <= t {
                    i += 1;
                }
                debug_assert_eq!(bnd(i), t);
                i
            }
        }
    }
}

impl Protocol for WeightedAdaptive {
    fn name(&self) -> String {
        match self.rule {
            WeightedRule::Adaptive => "weighted-adaptive".into(),
            WeightedRule::Threshold => "weighted-threshold".into(),
        }
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        allocate_weighted(self, &self.weights, cfg, rng, obs)
    }
}

/// Weighted one-choice baseline: each ball joins one weight-proportional
/// sample, no retry.
#[derive(Debug, Clone)]
pub struct WeightedOneChoice {
    weights: Vec<f64>,
}

impl WeightedOneChoice {
    /// Creates the baseline; same validation as [`WeightedAdaptive`]
    /// (negative/NaN rejected, zero weights legal).
    pub fn new(weights: Vec<f64>) -> Self {
        validate_weights(&weights);
        Self { weights }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Runs the full allocation of `m` balls with the faithful per-ball
    /// engine (back-compatible convenience).
    pub fn run<R: Rng64 + ?Sized>(&self, m: u64, rng: &mut R) -> Outcome {
        let cfg = RunConfig::new(self.weights.len(), m);
        self.allocate(&cfg, rng, &mut crate::protocol::NullObserver)
    }
}

impl WeightedSchedule for WeightedOneChoice {
    fn accept_limit(&self, _share: f64, _ball: u64, _m: u64) -> Option<f64> {
        None
    }
}

impl Protocol for WeightedOneChoice {
    fn name(&self) -> String {
        "weighted-one-choice".into()
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        allocate_weighted(self, &self.weights, cfg, rng, obs)
    }
}

/// The shared `allocate` body of the weighted family: resolves
/// [`Engine::Auto`] through [`Engine::auto_weighted`], then dispatches
/// to the faithful per-ball driver (`Faithful`/`Jump` — the weighted
/// family has no geometric-jump shortcut, so `Jump` aliases the
/// faithful loop) or the weight-class histogram engine
/// (`Histogram`/`LevelBatched`).
fn allocate_weighted<S, R, O>(
    schedule: &S,
    weights: &[f64],
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    S: WeightedSchedule + Protocol,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    assert_eq!(
        cfg.n,
        weights.len(),
        "RunConfig.n must equal the weight count"
    );
    // Build the classes once: `Auto` needs the class count to resolve,
    // and the histogram engine then reuses the same grouping.
    // `Concurrent` has no weighted-family path: resolve it like `Auto`
    // (documented on the `Engine` enum).
    let (engine, classes) = match cfg.engine {
        Engine::Auto | Engine::Concurrent => {
            let classes = WeightClasses::build(weights);
            let engine = Engine::auto_weighted(cfg.n, cfg.m, classes.len());
            (engine, Some(classes))
        }
        e => (e, None),
    };
    match engine {
        Engine::Histogram | Engine::LevelBatched => {
            let classes = classes.unwrap_or_else(|| WeightClasses::build(weights));
            drive_weighted_histogram(schedule, weights, &classes, cfg, rng, obs)
        }
        _ => drive_weighted_sequential(schedule, weights, cfg, rng, obs),
    }
}

/// The faithful per-ball weighted driver: one alias-table sample per
/// retry, acceptance by the schedule's float limit, full per-ball
/// observer traffic — built on the shared [`drive_sequential`] harness.
pub fn drive_weighted_sequential<S, R, O>(
    schedule: &S,
    weights: &[f64],
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    S: WeightedSchedule + Protocol,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let w_total: f64 = weights.iter().sum();
    let shares: Vec<f64> = weights.iter().map(|&w| w / w_total).collect();
    let alias = AliasTable::new(weights);
    let m = cfg.m;
    let mut out = drive_sequential(schedule.name(), cfg, rng, obs, |bins, ball, rng| {
        let mut samples = 0u64;
        loop {
            samples += 1;
            let j = alias.sample(rng);
            let accepts = match schedule.accept_limit(shares[j], ball, m) {
                None => true,
                Some(limit) => (bins.load(j) as f64) < limit,
            };
            if accepts {
                bins.place(j);
                return (j, samples);
            }
        }
    });
    out.scenario = Scenario::weighted(weights.to_vec());
    out
}

/// Runs a whole weighted allocation under the weight-class histogram
/// engine: every class keeps its own [`OccupancyHistogram`]; segment
/// intakes split over classes by *open class mass* with conditional
/// binomials and land within each class through the uniform engine's
/// occupancy scatter rounds; the last [`ROUND_CUTOFF`] balls of each
/// segment run the exact collapsed per-class chain. Bin identities are
/// synthetic within a class (one seeded permutation per class), exactly
/// as in the uniform histogram engine. `Observer::on_ball` never fires;
/// stage traces fire when wanted.
pub fn drive_weighted_histogram<S, R, O>(
    schedule: &S,
    weights: &[f64],
    classes: &WeightClasses,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    S: WeightedSchedule + Protocol,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let n64 = cfg.n as u64;
    let m = cfg.m;
    let k = classes.len();
    // Per-class state. Zero-weight classes keep no histogram (they can
    // never be sampled); `hists[c]` is indexed in class order.
    let mut hists: Vec<OccupancyHistogram> = (0..k)
        .map(|c| OccupancyHistogram::new(classes.members(c).len().max(1)))
        .collect();
    let shares: Vec<f64> = (0..k).map(|c| classes.share(c)).collect();
    // Per-class permutations for materialization, drawn up front so the
    // stream prefix is independent of how many stages are observed.
    let perms: Vec<Vec<u32>> = (0..k)
        .map(|c| random_permutation(classes.members(c).len(), rng))
        .collect();
    let materialize_all = |hists: &[OccupancyHistogram]| -> Vec<u32> {
        let mut loads = vec![0u32; cfg.n];
        for c in 0..k {
            if shares[c] == 0.0 {
                continue; // zero-weight members stay at load 0
            }
            let sorted = hists[c].to_sorted_loads();
            let members = classes.members(c);
            for (i, &l) in sorted.iter().enumerate() {
                loads[members[perms[c][i] as usize] as usize] = l;
            }
        }
        loads
    };

    let want_stages = obs.wants_stage_ends();
    let mut total_samples = 0u64;
    let mut max_samples = 0u64;
    let mut scratch: Vec<(u32, u64)> = Vec::new();
    let mut hit_scratch: Vec<u64> = Vec::new();
    let mut bounds: Vec<Option<u32>> = vec![None; k];
    let mut ball = 1u64;
    while ball <= m {
        // Per-class integer bounds, constant over the segment; the
        // segment ends at the earliest bound change over all classes.
        let mut end = m;
        for c in 0..k {
            if shares[c] == 0.0 {
                bounds[c] = Some(0); // never sampled, never open
                continue;
            }
            bounds[c] = schedule
                .accept_limit(shares[c], ball, m)
                .map(strict_int_bound);
            if bounds[c].is_some() {
                end = end.min(schedule.segment_end(shares[c], ball, m));
            }
        }
        debug_assert!(end >= ball);
        if want_stages {
            end = end.min(((ball - 1) / n64 + 1) * n64);
        }
        let count = end - ball + 1;
        let stats = place_weighted_segment(
            &mut hists,
            &shares,
            &bounds,
            count,
            &mut scratch,
            &mut hit_scratch,
            rng,
        );
        total_samples += stats.0;
        max_samples = max_samples.max(stats.1);
        if want_stages && end.is_multiple_of(n64) {
            obs.on_stage_end(end / n64, &materialize_all(&hists), end);
        }
        ball = end + 1;
    }
    if want_stages && m > 0 && !m.is_multiple_of(n64) {
        obs.on_stage_end(m / n64 + 1, &materialize_all(&hists), m);
    }

    Outcome {
        protocol: schedule.name(),
        n: cfg.n,
        m,
        total_samples,
        max_samples_per_ball: max_samples,
        // Weighted outcomes are dense-born: per-bin weights pin bin
        // identities (only *within* a weight class are bins
        // exchangeable), so the global lazy-histogram reconstruction
        // does not apply — see the lazy-outcome contract on
        // [`crate::loads::Loads`]. Histogram-view statistics still run
        // in O(#distinct loads) off the cached derived histogram.
        loads: materialize_all(&hists).into(),
        scenario: Scenario::weighted(weights.to_vec()),
    }
}

/// Places `count` balls of one constant-bound segment across the weight
/// classes. Returns `(samples, max_samples_per_ball)`.
fn place_weighted_segment<R: Rng64 + ?Sized>(
    hists: &mut [OccupancyHistogram],
    shares: &[f64],
    bounds: &[Option<u32>],
    count: u64,
    scratch: &mut Vec<(u32, u64)>,
    hit_scratch: &mut Vec<u64>,
    rng: &mut R,
) -> (u64, u64) {
    if count == 0 {
        return (0, 0);
    }
    let k = hists.len();
    // Open-mass per class: k_c·w_c/W; `None` bound = always open. A
    // class with share 0 is never open (bound forced to Some(0)).
    let open_mass = |hists: &[OccupancyHistogram], c: usize| -> f64 {
        if shares[c] == 0.0 {
            0.0
        } else {
            hists[c].open_bins(bounds[c]) as f64 * shares[c]
        }
    };
    // Feasibility: the segment's balls must fit below the bounds
    // (`None` = an unbounded class has infinite capacity).
    let capacity: Option<u64> = bounds.iter().enumerate().try_fold(0u64, |acc, (c, &b)| {
        b.map(|t| {
            acc + if shares[c] == 0.0 {
                0
            } else {
                hists[c].capacity_below(t)
            }
        })
    });
    if let Some(cap) = capacity {
        assert!(
            count <= cap,
            "weighted segment: {count} balls exceed the remaining capacity {cap}"
        );
    }
    // When no class is bounded every sample lands: the segment costs
    // exactly `count` samples (the one-choice law).
    let unbounded_only = bounds
        .iter()
        .zip(shares)
        .all(|(b, &s)| s == 0.0 || b.is_none());

    let mut left = count;
    let mut samples = 0u64;
    let mut masses = vec![0.0f64; k];
    while left >= ROUND_CUTOFF {
        for (c, mass) in masses.iter_mut().enumerate() {
            *mass = open_mass(hists, c);
        }
        let p: f64 = masses.iter().sum();
        debug_assert!(p > 0.0, "weighted round: no open mass");
        samples += if unbounded_only {
            left
        } else {
            stream_samples_for_hits_bounded(left, p.min(1.0), SAMPLES_EXACT_CUTOFF, rng)
        };
        // Split the round's hits over the open classes (conditional
        // binomial chain over open mass; the last open class surely
        // absorbs the remainder), then scatter within each class
        // through the uniform occupancy machinery.
        let open: Vec<usize> = (0..k).filter(|&c| masses[c] > 0.0).collect();
        let mut rem_hits = left;
        let mut rem_mass = p;
        let mut kept = 0u64;
        for (i, &c) in open.iter().enumerate() {
            if rem_hits == 0 {
                break;
            }
            let h = if i + 1 == open.len() {
                rem_hits
            } else {
                crate::histogram::split_binomial(
                    rem_hits,
                    (masses[c] / rem_mass).clamp(0.0, 1.0),
                    rng,
                )
            };
            rem_hits -= h;
            rem_mass -= masses[c];
            if h > 0 {
                kept += round_uniform(&mut hists[c], bounds[c], h, scratch, hit_scratch, rng);
            }
        }
        debug_assert!(kept > 0, "a weighted round with open capacity must place");
        if kept == 0 {
            break; // defensive: the exact tail below is always correct
        }
        left -= kept;
    }

    // Exact per-ball tail on the collapsed per-class chains. At most
    // ROUND_CUTOFF balls run here per segment, so per-ball mass
    // recomputation after a bin closes costs nothing.
    let mut max_samples = u64::from(count > left);
    for (c, mass) in masses.iter_mut().enumerate() {
        *mass = open_mass(hists, c);
    }
    let mut p: f64 = masses.iter().sum();
    let mut geo: Option<(u64, GeometricSampler)> = None;
    while left > 0 {
        debug_assert!(p > 0.0);
        let s = if unbounded_only {
            1
        } else {
            // Cache the sampler on the bit pattern of p (a bin closing
            // changes it; balls between closings reuse the ln).
            let bits = p.to_bits();
            let g = match &geo {
                Some((gb, g)) if *gb == bits => *g,
                _ => {
                    let g = GeometricSampler::new(p.min(1.0));
                    geo = Some((bits, g));
                    g
                }
            };
            g.sample(rng)
        };
        samples += s;
        max_samples = max_samples.max(s);
        // Class ∝ open mass, then level within the class ∝ open count
        // (walked from the top open level down, where threshold rules
        // pile the mass).
        let mut r = rng.next_f64() * p;
        let mut c = usize::MAX;
        for (i, &mc) in masses.iter().enumerate() {
            if mc <= 0.0 {
                continue;
            }
            c = i;
            if r < mc {
                break;
            }
            r -= mc;
        }
        debug_assert!(c != usize::MAX, "tail ball with no open class");
        let hist = &mut hists[c];
        let kc = hist.open_bins(bounds[c]);
        debug_assert!(kc > 0);
        let mut rr = rng.range_u64(kc);
        let base = hist.min_load();
        let top = match bounds[c] {
            Some(t) => t.min(hist.max_load() + 1),
            None => hist.max_load() + 1,
        };
        let mut chosen = base;
        for l in (base..top).rev() {
            let cnt = hist.count(l);
            if rr < cnt {
                chosen = l;
                break;
            }
            rr -= cnt;
        }
        hist.promote(chosen, 1, 1);
        if bounds[c] == Some(chosen + 1) {
            // The promoted bin closed; refresh this class's mass and
            // the total from scratch to keep float drift out.
            masses[c] = open_mass(hists, c);
            p = masses.iter().sum();
        }
        left -= 1;
    }

    (samples, max_samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use bib_rng::SplitMix64;

    #[test]
    fn uniform_weights_match_guarantee() {
        let n = 64usize;
        let m = 64 * 16u64;
        let p = WeightedAdaptive::new(vec![1.0; n]);
        let mut rng = SplitMix64::new(1);
        let out = p.run(m, &mut rng);
        out.validate();
        // Uniform fair share: the paper's ⌈m/n⌉ + 1 bound.
        let bound = m.div_ceil(n as u64) + 1;
        assert!(out.loads.iter().all(|&l| (l as u64) <= bound));
        assert!(out.max_overload() <= 2.0 + 1e-9);
        assert_eq!(out.scenario.label(), "weighted");
    }

    #[test]
    fn per_bin_guarantee_holds_for_skewed_weights() {
        // Weights 1..=n: bin j's share is proportional to j.
        let n = 32usize;
        let weights: Vec<f64> = (1..=n).map(|j| j as f64).collect();
        let w_total: f64 = weights.iter().sum();
        let m = 4_000u64;
        let p = WeightedAdaptive::new(weights.clone());
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = p.run(m, &mut rng);
            out.validate();
            for (j, &l) in out.loads.iter().enumerate() {
                let fair = m as f64 * weights[j] / w_total;
                assert!(
                    (l as f64) <= fair.ceil() + 1.0 + 1e-9,
                    "seed {seed} bin {j}: load {l} fair {fair}"
                );
            }
        }
    }

    #[test]
    fn allocation_time_stays_linear_with_skew() {
        let n = 256usize;
        // Two classes: heavy bins (weight 8) and light bins (weight 1).
        let weights: Vec<f64> = (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect();
        let m = 16_000u64;
        let mut rng = SplitMix64::new(7);
        let out = WeightedAdaptive::new(weights).run(m, &mut rng);
        out.validate();
        assert!(out.time_ratio() < 4.0, "time ratio {}", out.time_ratio());
    }

    #[test]
    fn weighted_one_choice_tracks_fair_share_only_on_average() {
        let weights: Vec<f64> = vec![1.0, 3.0];
        let m = 40_000u64;
        let mut rng = SplitMix64::new(9);
        let out = WeightedOneChoice::new(weights).run(m, &mut rng);
        out.validate();
        // Means near 10k / 30k, but deviation ~ √m ≫ the adaptive bound.
        assert!((out.loads[0] as f64 - 10_000.0).abs() < 600.0);
        assert!((out.loads[1] as f64 - 30_000.0).abs() < 600.0);
    }

    #[test]
    fn weighted_adaptive_beats_one_choice_on_overload() {
        let n = 64usize;
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 5) as f64).collect();
        let m = 64 * 64u64;
        let mut r1 = SplitMix64::new(11);
        let mut r2 = SplitMix64::new(11);
        let ada = WeightedAdaptive::new(weights.clone()).run(m, &mut r1);
        let one = WeightedOneChoice::new(weights).run(m, &mut r2);
        assert!(ada.max_overload() <= 2.0 + 1e-9);
        assert!(one.max_overload() > ada.max_overload());
        assert!(ada.weighted_psi() < one.weighted_psi());
    }

    #[test]
    fn zero_balls_and_single_bin() {
        let mut rng = SplitMix64::new(13);
        let out = WeightedAdaptive::new(vec![2.5]).run(0, &mut rng);
        out.validate();
        assert_eq!(out.total_samples, 0);
        let out = WeightedAdaptive::new(vec![2.5]).run(9, &mut rng);
        assert_eq!(out.loads, vec![9]);
    }

    #[test]
    fn zero_weight_bins_are_legal_and_stay_empty() {
        let weights = vec![1.0, 0.0, 2.0, 0.0];
        let m = 600u64;
        for engine in [Engine::Faithful, Engine::Histogram] {
            let cfg = RunConfig::new(4, m).with_engine(engine);
            let mut rng = SplitMix64::new(17);
            let out =
                WeightedAdaptive::new(weights.clone()).allocate(&cfg, &mut rng, &mut NullObserver);
            out.validate();
            assert_eq!(out.loads[1], 0, "{engine:?}");
            assert_eq!(out.loads[3], 0, "{engine:?}");
            assert_eq!(out.total_balls(), m);
            // Overloads of zero-weight bins are 0 − 0, not NaN.
            assert!(out.overloads().iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weight() {
        WeightedAdaptive::new(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_weight() {
        WeightedAdaptive::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero_weights() {
        WeightedOneChoice::new(vec![0.0, 0.0]);
    }

    #[test]
    fn weight_classes_exact_grouping() {
        let weights = vec![1.0, 8.0, 1.0, 0.0, 8.0, 2.0];
        let c = WeightClasses::build(&weights);
        assert!(c.exact());
        assert_eq!(c.len(), 4); // {0, 1, 2, 8}
        assert_eq!(c.weight(0), 0.0);
        assert_eq!(c.members(0), &[3]);
        let all: usize = (0..c.len()).map(|i| c.members(i).len()).sum();
        assert_eq!(all, weights.len());
    }

    #[test]
    fn weight_classes_quantize_when_too_many_distinct() {
        let n = 4 * MAX_WEIGHT_CLASSES;
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + j as f64 / n as f64).collect();
        let c = WeightClasses::build(&weights);
        assert!(!c.exact());
        assert!(c.len() <= MAX_WEIGHT_CLASSES);
        // Mass is preserved: Σ n_c·w_c = Σ w_j.
        let grouped: f64 = (0..c.len())
            .map(|i| c.weight(i) * c.members(i).len() as f64)
            .sum();
        let total: f64 = weights.iter().sum();
        assert!((grouped - total).abs() < 1e-9 * total);
    }

    #[test]
    fn schedule_bound_matches_faithful_acceptance() {
        // The defining consistency property between the two drivers.
        let p = WeightedAdaptive::new(vec![3.0, 1.0, 0.5, 11.0]);
        let w_total = 15.5f64;
        for (j, &w) in p.weights().iter().enumerate() {
            let share = w / w_total;
            for ball in [1u64, 7, 100, 12345] {
                let limit = p.accept_limit(share, ball, 20_000).unwrap();
                let t = strict_int_bound(limit);
                for load in t.saturating_sub(2)..t + 2 {
                    assert_eq!(
                        (load as f64) < limit,
                        load < t,
                        "bin {j} ball {ball} load {load}"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_end_is_tight() {
        let p = WeightedAdaptive::new(vec![5.0, 1.0]);
        let m = 10_000u64;
        for share in [5.0 / 6.0, 1.0 / 6.0, 1e-7, 0.999] {
            let mut ball = 1u64;
            while ball <= m {
                let end = WeightedSchedule::segment_end(&p, share, ball, m);
                assert!(end >= ball && end <= m);
                let bnd = |i: u64| strict_int_bound(p.accept_limit(share, i, m).unwrap());
                assert_eq!(bnd(end), bnd(ball), "share {share} ball {ball}");
                if end < m {
                    assert!(bnd(end + 1) > bnd(end), "share {share} end {end} not tight");
                }
                ball = end + 1;
            }
        }
    }

    #[test]
    fn histogram_engine_mass_bounds_and_time() {
        let n = 512usize;
        let weights: Vec<f64> = (0..n).map(|j| if j % 3 == 0 { 4.0 } else { 1.0 }).collect();
        let w_total: f64 = weights.iter().sum();
        let m = 60_000u64;
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        let mut rng = SplitMix64::new(23);
        let out =
            WeightedAdaptive::new(weights.clone()).allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        for (j, &l) in out.loads.iter().enumerate() {
            let fair = m as f64 * weights[j] / w_total;
            assert!(
                (l as f64) <= fair.ceil() + 1.0 + 1e-9,
                "bin {j}: load {l} fair {fair}"
            );
        }
        assert!(out.time_ratio() >= 1.0 && out.time_ratio() < 4.0);
    }

    #[test]
    fn histogram_one_choice_costs_exactly_m_samples() {
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let m = 40_000u64;
        let cfg = RunConfig::new(4, m).with_engine(Engine::Histogram);
        let mut rng = SplitMix64::new(29);
        let out = WeightedOneChoice::new(weights).allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, m, "one-choice wastes no samples");
    }

    #[test]
    fn auto_resolves_weighted_cells() {
        // Small → faithful; big → histogram. Both must validate.
        let weights = vec![2.0, 1.0, 1.0, 1.0];
        for (m, _expect_hist) in [(100u64, false), (1 << 20, true)] {
            let cfg = RunConfig::new(4, m).with_engine(Engine::Auto);
            let mut rng = SplitMix64::new(31);
            let out =
                WeightedAdaptive::new(weights.clone()).allocate(&cfg, &mut rng, &mut NullObserver);
            out.validate();
            assert_eq!(out.total_balls(), m);
        }
        assert_eq!(Engine::auto_weighted(4, 100, 2), Engine::Faithful);
        assert_eq!(Engine::auto_weighted(4, 1 << 20, 2), Engine::Histogram);
    }

    #[test]
    fn stage_traces_fire_under_both_engines() {
        use crate::protocol::StageTrace;
        let n = 64usize;
        let m = 64 * 5 + 13u64; // 5 full stages + remainder
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 2) as f64).collect();
        for engine in [Engine::Faithful, Engine::Histogram] {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            let mut rng = SplitMix64::new(37);
            let mut trace = StageTrace::new();
            let out = WeightedAdaptive::new(weights.clone()).allocate(&cfg, &mut rng, &mut trace);
            out.validate();
            assert_eq!(trace.stages, vec![1, 2, 3, 4, 5, 6], "{engine:?}");
        }
    }
}
