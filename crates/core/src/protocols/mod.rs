//! All sequential allocation protocols: the paper's two (Section 2) and
//! the Table 1 baselines.
//!
//! | Protocol | Source | Allocation time | Max load |
//! |----------|--------|-----------------|----------|
//! | [`OneChoice`] | folklore | `m` | `m/n + Θ(√((m/n)·log n))` heavy case |
//! | [`GreedyD`] | Azar et al. \[4,5\] | `Θ(md)` | `m/n + ln ln n / ln d + Θ(1)` |
//! | [`LeftD`] | Vöcking \[16\] | `Θ(md)` | `m/n + ln ln n / (d ln Φ_d) + Θ(1)` |
//! | [`Memory`] | Mitzenmacher et al. \[14\] | `Θ(m(d+k))` samples, `d` fresh | `ln ln n / ln Φ₂ + Θ(1)` for (1,1), m = n |
//! | [`Threshold`] | Czumaj–Stemann \[7\] / Thm 4.1 | `m + O(m^{3/4} n^{1/4})` | `⌈m/n⌉ + 1` |
//! | [`Adaptive`] | **this paper** / Thm 3.1 | `O(m)` | `⌈m/n⌉ + 1` |
//!
//! `Adaptive::tight()` is the `i/n`-threshold ablation from Section 2
//! (coupon-collector behaviour, `Θ(m log n)`); [`OnePlusBeta`] is the
//! Peres–Talwar–Wieder `(1+β)`-choice process (gap `Θ(log n / β)`
//! independent of `m`), and [`ThresholdSlack`] generalises `threshold`'s
//! `+1` to `+s`.

mod adaptive;
mod greedy;
mod left;
mod memory;
mod one_choice;
mod one_plus_beta;
mod threshold;

pub use adaptive::Adaptive;
pub use greedy::{GreedyD, TieBreak};
pub use left::LeftD;
pub use memory::Memory;
pub use one_choice::OneChoice;
pub use one_plus_beta::OnePlusBeta;
pub use threshold::{Threshold, ThresholdSlack};

use crate::protocol::DynProtocol;

/// The protocols compared in Table 1, in the table's order, with the
/// standard parameters used by the `table1` experiment.
///
/// Boxed behind the object-safe [`DynProtocol`] wrapper; `dyn
/// DynProtocol` implements [`crate::protocol::Protocol`], so suite
/// entries flow through the same generic entry points as concrete
/// protocols.
pub fn table1_suite() -> Vec<Box<dyn DynProtocol + Send + Sync>> {
    vec![
        Box::new(OneChoice),
        Box::new(GreedyD::new(2)),
        Box::new(GreedyD::new(3)),
        Box::new(LeftD::new(2)),
        Box::new(Memory::new(1, 1)),
        Box::new(Threshold),
        Box::new(Adaptive::paper()),
    ]
}

/// Looks a protocol up by its canonical name (as printed by
/// `Protocol::name` for the standard parameterisations). Returns `None`
/// for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn DynProtocol + Send + Sync>> {
    Some(match name {
        "one-choice" => Box::new(OneChoice) as Box<dyn DynProtocol + Send + Sync>,
        "greedy[2]" => Box::new(GreedyD::new(2)),
        "greedy[3]" => Box::new(GreedyD::new(3)),
        "left[2]" => Box::new(LeftD::new(2)),
        "memory(1,1)" => Box::new(Memory::new(1, 1)),
        "threshold" => Box::new(Threshold),
        "adaptive" => Box::new(Adaptive::paper()),
        "adaptive-tight" => Box::new(Adaptive::tight()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    #[test]
    fn suite_has_expected_names() {
        let names: Vec<String> = table1_suite().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "one-choice",
                "greedy[2]",
                "greedy[3]",
                "left[2]",
                "memory(1,1)",
                "threshold",
                "adaptive"
            ]
        );
    }

    #[test]
    fn by_name_round_trips_suite() {
        for p in table1_suite() {
            let found = by_name(&p.name()).expect("suite protocol must be findable");
            assert_eq!(found.name(), p.name());
        }
        assert!(by_name("adaptive-tight").is_some());
        assert!(by_name("nonsense").is_none());
    }
}
